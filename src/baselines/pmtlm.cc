#include "baselines/pmtlm.h"

#include <algorithm>
#include <cmath>

namespace cold::baselines {

PmtlmModel::PmtlmModel(PmtlmConfig config, const text::PostStore& posts,
                       const graph::Digraph& links)
    : config_(config), posts_(posts), links_(links) {
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    for (text::WordId w : posts_.words(d)) vocab_ = std::max(vocab_, w + 1);
  }
}

cold::Status PmtlmModel::Train() {
  if (config_.num_factors < 1 || config_.iterations < 1) {
    return cold::Status::InvalidArgument("bad PMTLM config");
  }
  if (!posts_.finalized() || posts_.num_posts() == 0) {
    return cold::Status::InvalidArgument("no posts");
  }
  const int F = config_.num_factors;
  const int U = posts_.num_users();
  const double alpha = config_.ResolvedAlpha();
  const double beta = config_.beta;
  const double lambda1 = config_.lambda1;
  {
    double n_neg = static_cast<double>(U) * (U - 1) -
                   static_cast<double>(links_.num_edges());
    double ratio = n_neg / static_cast<double>(F);
    lambda0_ = ratio > 1.0 ? std::max(lambda1, config_.kappa * std::log(ratio))
                           : lambda1;
  }

  // n_if counts both word tokens of user i in factor f and link endpoints.
  std::vector<int32_t> n_if(static_cast<size_t>(U) * F, 0);
  std::vector<int32_t> n_fv(static_cast<size_t>(F) * vocab_, 0);
  std::vector<int32_t> n_f(static_cast<size_t>(F), 0);
  std::vector<int32_t> m_f(static_cast<size_t>(F), 0);  // links per factor
  std::vector<int32_t> token_factor(static_cast<size_t>(posts_.num_tokens()));
  std::vector<int32_t> link_factor(static_cast<size_t>(links_.num_edges()));

  cold::RandomSampler sampler(config_.seed, /*stream=*/31);
  size_t token = 0;
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    int i = posts_.author(d);
    for (text::WordId w : posts_.words(d)) {
      int f = static_cast<int>(sampler.UniformInt(static_cast<uint32_t>(F)));
      token_factor[token++] = f;
      n_if[static_cast<size_t>(i) * F + f]++;
      n_fv[static_cast<size_t>(f) * vocab_ + w]++;
      n_f[static_cast<size_t>(f)]++;
    }
  }
  for (graph::EdgeId e = 0; e < links_.num_edges(); ++e) {
    int f = static_cast<int>(sampler.UniformInt(static_cast<uint32_t>(F)));
    link_factor[static_cast<size_t>(e)] = f;
    const graph::Edge& edge = links_.edge(e);
    n_if[static_cast<size_t>(edge.src) * F + f]++;
    n_if[static_cast<size_t>(edge.dst) * F + f]++;
    m_f[static_cast<size_t>(f)]++;
  }

  std::vector<double> weights(static_cast<size_t>(F));
  for (int it = 0; it < config_.iterations; ++it) {
    // Words.
    token = 0;
    for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
      int i = posts_.author(d);
      for (text::WordId w : posts_.words(d)) {
        int old_f = token_factor[token];
        n_if[static_cast<size_t>(i) * F + old_f]--;
        n_fv[static_cast<size_t>(old_f) * vocab_ + w]--;
        n_f[static_cast<size_t>(old_f)]--;
        for (int f = 0; f < F; ++f) {
          weights[static_cast<size_t>(f)] =
              (n_if[static_cast<size_t>(i) * F + f] + alpha) *
              (n_fv[static_cast<size_t>(f) * vocab_ + w] + beta) /
              (n_f[static_cast<size_t>(f)] + vocab_ * beta);
        }
        int new_f = sampler.Categorical(weights);
        token_factor[token++] = static_cast<int32_t>(new_f);
        n_if[static_cast<size_t>(i) * F + new_f]++;
        n_fv[static_cast<size_t>(new_f) * vocab_ + w]++;
        n_f[static_cast<size_t>(new_f)]++;
      }
    }
    // Links: one shared factor per link.
    for (graph::EdgeId e = 0; e < links_.num_edges(); ++e) {
      const graph::Edge& edge = links_.edge(e);
      int old_f = link_factor[static_cast<size_t>(e)];
      n_if[static_cast<size_t>(edge.src) * F + old_f]--;
      n_if[static_cast<size_t>(edge.dst) * F + old_f]--;
      m_f[static_cast<size_t>(old_f)]--;
      for (int f = 0; f < F; ++f) {
        double m = m_f[static_cast<size_t>(f)];
        weights[static_cast<size_t>(f)] =
            (n_if[static_cast<size_t>(edge.src) * F + f] + alpha) *
            (n_if[static_cast<size_t>(edge.dst) * F + f] + alpha) *
            (m + lambda1) / (m + lambda0_ + lambda1);
      }
      int new_f = sampler.Categorical(weights);
      link_factor[static_cast<size_t>(e)] = static_cast<int32_t>(new_f);
      n_if[static_cast<size_t>(edge.src) * F + new_f]++;
      n_if[static_cast<size_t>(edge.dst) * F + new_f]++;
      m_f[static_cast<size_t>(new_f)]++;
    }
  }

  estimates_.U = U;
  estimates_.F = F;
  estimates_.V = vocab_;
  estimates_.theta.resize(static_cast<size_t>(U) * F);
  for (int i = 0; i < U; ++i) {
    int32_t total = 0;
    for (int f = 0; f < F; ++f) total += n_if[static_cast<size_t>(i) * F + f];
    double denom = total + F * alpha;
    for (int f = 0; f < F; ++f) {
      estimates_.theta[static_cast<size_t>(i) * F + f] =
          (n_if[static_cast<size_t>(i) * F + f] + alpha) / denom;
    }
  }
  estimates_.phi.resize(static_cast<size_t>(F) * vocab_);
  for (int f = 0; f < F; ++f) {
    double denom = n_f[static_cast<size_t>(f)] + vocab_ * beta;
    for (int v = 0; v < vocab_; ++v) {
      estimates_.phi[static_cast<size_t>(f) * vocab_ + v] =
          (n_fv[static_cast<size_t>(f) * vocab_ + v] + beta) / denom;
    }
  }
  estimates_.delta.resize(static_cast<size_t>(F));
  for (int f = 0; f < F; ++f) {
    double m = m_f[static_cast<size_t>(f)];
    estimates_.delta[static_cast<size_t>(f)] =
        (m + lambda1) / (m + lambda0_ + lambda1);
  }
  return cold::Status::OK();
}

double PmtlmModel::LinkProbability(int i, int i2) const {
  double p = 0.0;
  for (int f = 0; f < estimates_.F; ++f) {
    p += estimates_.Theta(i, f) * estimates_.Theta(i2, f) *
         estimates_.delta[static_cast<size_t>(f)];
  }
  return p;
}

double PmtlmModel::LogPostProbability(std::span<const text::WordId> words,
                                      text::UserId author) const {
  double ll = 0.0;
  for (text::WordId w : words) {
    double p = 0.0;
    int v = std::min<int>(w, vocab_ - 1);
    for (int f = 0; f < estimates_.F; ++f) {
      p += estimates_.Theta(author, f) * estimates_.Phi(f, v);
    }
    ll += std::log(std::max(p, 1e-300));
  }
  return ll;
}

double PmtlmModel::Perplexity(const text::PostStore& test_posts) const {
  double total_ll = 0.0;
  int64_t tokens = 0;
  for (text::PostId d = 0; d < test_posts.num_posts(); ++d) {
    if (test_posts.length(d) == 0) continue;
    total_ll += LogPostProbability(test_posts.words(d), test_posts.author(d));
    tokens += test_posts.length(d);
  }
  if (tokens == 0) return 0.0;
  return std::exp(-total_ll / static_cast<double>(tokens));
}

}  // namespace cold::baselines
