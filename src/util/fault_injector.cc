#include "util/fault_injector.h"

#include <csignal>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "util/logging.h"

namespace cold {

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

cold::Status FaultInjector::Configure(const std::string& spec) {
  Disarm();
  if (spec.empty()) return cold::Status::OK();
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return cold::Status::InvalidArgument(
        "fault spec must be '<point>:<n>', got '" + spec + "'");
  }
  errno = 0;
  char* end = nullptr;
  long long n = std::strtoll(spec.c_str() + colon + 1, &end, 10);
  if (errno != 0 || *end != '\0' || n < 0) {
    return cold::Status::InvalidArgument(
        "fault spec count must be a non-negative integer, got '" + spec +
        "'");
  }
  point_ = spec.substr(0, colon);
  n_ = static_cast<int64_t>(n);
  return cold::Status::OK();
}

void FaultInjector::ConfigureFromEnv() {
  const char* spec = std::getenv("COLD_FAULT_POINT");
  if (spec == nullptr) return;
  if (auto st = Configure(spec); !st.ok()) {
    COLD_LOG(kWarning) << "ignoring COLD_FAULT_POINT: " << st.ToString();
  } else if (armed()) {
    COLD_LOG(kWarning) << "fault injection armed: " << point_ << ":" << n_;
  }
}

void FaultInjector::Disarm() {
  point_.clear();
  n_ = -1;
}

void FaultInjector::MaybeCrash(const char* point, int64_t n) {
  if (point_.empty()) return;
  if (n != n_ || point_ != point) return;
  // The whole purpose is to die exactly like `kill -9`: no destructors, no
  // buffered-IO flushes, no atexit handlers.
  ::raise(SIGKILL);
  // SIGKILL cannot be caught, but be paranoid about exotic platforms.
  ::_exit(137);
}

}  // namespace cold
