#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include "core/cold.h"
#include "core/model_io.h"
#include "data/synthetic.h"

namespace cold::core {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

ColdEstimates SmallEstimates() {
  data::SyntheticConfig config;
  config.num_users = 50;
  config.num_communities = 3;
  config.num_topics = 4;
  config.num_time_slices = 6;
  config.core_words_per_topic = 5;
  config.background_words = 15;
  config.posts_per_user = 4.0;
  config.words_per_post = 5.0;
  config.follows_per_user = 3;
  auto ds = std::move(data::SyntheticSocialGenerator(config).Generate())
                .ValueOrDie();
  ColdConfig model;
  model.num_communities = 3;
  model.num_topics = 4;
  model.iterations = 10;
  model.burn_in = 5;
  ColdGibbsSampler sampler(model, ds.posts, &ds.interactions);
  EXPECT_TRUE(sampler.Init().ok());
  EXPECT_TRUE(sampler.Train().ok());
  return sampler.AveragedEstimates();
}

TEST(ModelIoTest, RoundTripPreservesEverything) {
  ColdEstimates original = SmallEstimates();
  std::string path = TempPath("cold_model_io_roundtrip.bin");
  ASSERT_TRUE(SaveEstimates(original, path).ok());
  auto loaded_result = LoadEstimates(path);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status().ToString();
  ColdEstimates loaded = std::move(loaded_result).ValueOrDie();

  EXPECT_EQ(loaded.U, original.U);
  EXPECT_EQ(loaded.C, original.C);
  EXPECT_EQ(loaded.K, original.K);
  EXPECT_EQ(loaded.T, original.T);
  EXPECT_EQ(loaded.V, original.V);
  EXPECT_EQ(loaded.pi, original.pi);
  EXPECT_EQ(loaded.theta, original.theta);
  EXPECT_EQ(loaded.eta, original.eta);
  EXPECT_EQ(loaded.phi, original.phi);
  EXPECT_EQ(loaded.psi, original.psi);
  fs::remove(path);
}

TEST(ModelIoTest, LoadedModelPredictsIdentically) {
  ColdEstimates original = SmallEstimates();
  std::string path = TempPath("cold_model_io_predict.bin");
  ASSERT_TRUE(SaveEstimates(original, path).ok());
  ColdEstimates loaded = std::move(LoadEstimates(path)).ValueOrDie();

  ColdPredictor before(original, 3);
  ColdPredictor after(loaded, 3);
  std::vector<text::WordId> message = {0, 1, 2};
  for (int i = 0; i < 5; ++i) {
    for (int j = 5; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(before.DiffusionProbability(i, j, message),
                       after.DiffusionProbability(i, j, message));
      EXPECT_DOUBLE_EQ(before.LinkProbability(i, j),
                       after.LinkProbability(i, j));
    }
  }
  fs::remove(path);
}

TEST(ModelIoTest, MissingFileFails) {
  auto result = LoadEstimates("/nonexistent/cold_model.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(ModelIoTest, BadMagicFails) {
  std::string path = TempPath("cold_model_io_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACOLDMODEL_____________";
  }
  auto result = LoadEstimates(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);
  fs::remove(path);
}

TEST(ModelIoTest, TruncatedFileFails) {
  ColdEstimates original = SmallEstimates();
  std::string path = TempPath("cold_model_io_trunc.bin");
  ASSERT_TRUE(SaveEstimates(original, path).ok());
  // Chop the file in half.
  auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  EXPECT_FALSE(LoadEstimates(path).ok());
  fs::remove(path);
}

TEST(ModelIoTest, TrailingGarbageFails) {
  ColdEstimates original = SmallEstimates();
  std::string path = TempPath("cold_model_io_trailing.bin");
  ASSERT_TRUE(SaveEstimates(original, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra";
  }
  EXPECT_FALSE(LoadEstimates(path).ok());
  fs::remove(path);
}

TEST(ModelIoTest, RejectsNonFinitePayload) {
  ColdEstimates original = SmallEstimates();
  std::string path = TempPath("cold_model_io_nonfinite.bin");

  // A NaN smuggled into theta must be caught at load time. The header is
  // magic (8 bytes) + five int32 dims; theta starts after pi.
  const std::streamoff header_bytes = 8 + 5 * sizeof(int32_t);
  const std::streamoff theta_offset =
      header_bytes +
      static_cast<std::streamoff>(original.pi.size() * sizeof(double));
  for (double poison :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()}) {
    ASSERT_TRUE(SaveEstimates(original, path).ok());
    {
      std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
      file.seekp(theta_offset);
      file.write(reinterpret_cast<const char*>(&poison), sizeof(poison));
    }
    auto result = LoadEstimates(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
    EXPECT_NE(result.status().message().find("non-finite"),
              std::string::npos);
    EXPECT_NE(result.status().message().find("theta"), std::string::npos);
  }

  // Round trip of the clean file still succeeds (the check does not
  // reject legitimate payloads).
  ASSERT_TRUE(SaveEstimates(original, path).ok());
  auto clean = LoadEstimates(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->theta, original.theta);
  fs::remove(path);
}

TEST(ModelIoTest, RejectsInvalidDimensionsOnSave) {
  ColdEstimates bad;
  bad.U = 1;
  bad.C = 0;  // invalid
  bad.K = 1;
  bad.T = 1;
  bad.V = 1;
  EXPECT_FALSE(
      SaveEstimates(bad, TempPath("cold_model_io_invalid.bin")).ok());
}

}  // namespace
}  // namespace cold::core
