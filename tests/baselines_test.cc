#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/eutb.h"
#include "baselines/lda.h"
#include "baselines/mmsb.h"
#include "baselines/pipeline.h"
#include "baselines/pmtlm.h"
#include "baselines/ti.h"
#include "baselines/tot.h"
#include "baselines/wtm.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "util/math_util.h"

namespace cold::baselines {
namespace {

data::SyntheticConfig TestDataConfig() {
  data::SyntheticConfig config;
  config.num_users = 150;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_time_slices = 12;
  config.core_words_per_topic = 12;
  config.background_words = 60;
  config.posts_per_user = 10.0;
  config.words_per_post = 8.0;
  config.follows_per_user = 8;
  config.seed = 11;
  return config;
}

const data::SocialDataset& TestData() {
  static const data::SocialDataset* dataset = [] {
    data::SyntheticSocialGenerator gen(TestDataConfig());
    return new data::SocialDataset(std::move(gen.Generate()).ValueOrDie());
  }();
  return *dataset;
}

// ------------------------------------------------------------------- LDA --

TEST(LdaTest, RejectsBadConfig) {
  LdaConfig config;
  config.num_topics = 0;
  LdaModel model(config, TestData().posts);
  EXPECT_FALSE(model.Train().ok());
}

TEST(LdaTest, PerWordTrainsAndNormalizes) {
  LdaConfig config;
  config.num_topics = 6;
  config.iterations = 30;
  config.alpha = 0.5;
  LdaModel model(config, TestData().posts);
  ASSERT_TRUE(model.Train().ok());
  const LdaEstimates& est = model.estimates();
  EXPECT_EQ(est.K, 6);
  for (int k = 0; k < est.K; ++k) {
    double total = 0.0;
    for (int v = 0; v < est.V; ++v) total += est.Phi(k, v);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (int d = 0; d < est.num_documents; d += 97) {
    double total = 0.0;
    for (int k = 0; k < est.K; ++k) total += est.Theta(d, k);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(LdaTest, PerPostRecoversPlantedTopics) {
  LdaConfig config;
  config.num_topics = 8;  // a little slack over the 6 planted topics
  config.iterations = 80;
  config.alpha = 0.5;
  config.assignment = LdaAssignment::kPerPost;
  config.document_unit = LdaDocumentUnit::kUserDocument;
  LdaModel model(config, TestData().posts);
  ASSERT_TRUE(model.Train().ok());
  const auto& truth = TestData().truth;
  int matched = 0;
  for (size_t kt = 0; kt < truth.phi.size(); ++kt) {
    double best = 0.0;
    for (int k = 0; k < model.estimates().K; ++k) {
      std::vector<double> learned(static_cast<size_t>(model.estimates().V));
      for (int v = 0; v < model.estimates().V; ++v) {
        learned[static_cast<size_t>(v)] = model.estimates().Phi(k, v);
      }
      best = std::max(best, cold::CosineSimilarity(truth.phi[kt], learned));
    }
    if (best > 0.5) ++matched;
  }
  EXPECT_GE(matched, 5);
}

TEST(LdaTest, PostTopicsPopulated) {
  LdaConfig config;
  config.num_topics = 4;
  config.iterations = 10;
  config.assignment = LdaAssignment::kPerPost;
  LdaModel model(config, TestData().posts);
  ASSERT_TRUE(model.Train().ok());
  EXPECT_EQ(model.post_topics().size(),
            static_cast<size_t>(TestData().posts.num_posts()));
  for (int32_t k : model.post_topics()) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 4);
  }
}

TEST(LdaTest, PerplexityBeatsUniform) {
  LdaConfig config;
  config.num_topics = 6;
  config.iterations = 30;
  config.alpha = 0.5;
  config.document_unit = LdaDocumentUnit::kUserDocument;
  LdaModel model(config, TestData().posts);
  ASSERT_TRUE(model.Train().ok());
  double perp = model.Perplexity(TestData().posts);
  EXPECT_GT(perp, 1.0);
  EXPECT_LT(perp, model.estimates().V * 0.8);
}

TEST(LdaTest, TopicPosteriorNormalized) {
  LdaConfig config;
  config.num_topics = 4;
  config.iterations = 10;
  LdaModel model(config, TestData().posts);
  ASSERT_TRUE(model.Train().ok());
  std::vector<text::WordId> words = {0, 1, 2};
  auto post = model.TopicPosterior(words);
  EXPECT_NEAR(std::accumulate(post.begin(), post.end(), 0.0), 1.0, 1e-9);
}

// ------------------------------------------------------------------ MMSB --

TEST(MmsbTest, TrainsAndPredictsLinks) {
  MmsbConfig config;
  config.num_communities = 4;
  config.iterations = 50;
  config.rho = 0.5;
  const auto& ds = TestData();
  data::LinkSplit split = data::SplitLinks(ds.interactions, 0.2, 2.0, 3, 0);
  MmsbModel model(config, split.train, ds.num_users());
  ASSERT_TRUE(model.Train().ok());

  std::vector<double> pos, neg;
  for (const auto& [a, b] : split.test_positive) {
    pos.push_back(model.LinkProbability(a, b));
  }
  for (const auto& [a, b] : split.test_negative) {
    neg.push_back(model.LinkProbability(a, b));
  }
  EXPECT_GT(eval::RocAuc(pos, neg), 0.55);
}

TEST(MmsbTest, MembershipsNormalized) {
  MmsbConfig config;
  config.num_communities = 4;
  config.iterations = 20;
  config.rho = 0.5;
  const auto& ds = TestData();
  MmsbModel model(config, ds.interactions, ds.num_users());
  ASSERT_TRUE(model.Train().ok());
  for (int i = 0; i < ds.num_users(); i += 29) {
    double total = 0.0;
    for (int c = 0; c < 4; ++c) total += model.estimates().Pi(i, c);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  auto top = model.TopCommunities(0, 2);
  EXPECT_EQ(top.size(), 2u);
}

TEST(MmsbTest, RejectsEmptyGraph) {
  graph::Digraph::Builder builder;
  graph::Digraph empty = std::move(builder).Build(5);
  MmsbModel model(MmsbConfig{}, empty, 5);
  EXPECT_FALSE(model.Train().ok());
}

// ----------------------------------------------------------------- PMTLM --

TEST(PmtlmTest, TrainsAndScoresLinks) {
  PmtlmConfig config;
  config.num_factors = 4;
  config.iterations = 30;
  config.alpha = 0.5;
  const auto& ds = TestData();
  data::LinkSplit split = data::SplitLinks(ds.interactions, 0.2, 2.0, 5, 0);
  PmtlmModel model(config, ds.posts, split.train);
  ASSERT_TRUE(model.Train().ok());

  std::vector<double> pos, neg;
  for (const auto& [a, b] : split.test_positive) {
    pos.push_back(model.LinkProbability(a, b));
  }
  for (const auto& [a, b] : split.test_negative) {
    neg.push_back(model.LinkProbability(a, b));
  }
  EXPECT_GT(eval::RocAuc(pos, neg), 0.55);
}

TEST(PmtlmTest, PerplexityReasonable) {
  PmtlmConfig config;
  config.num_factors = 6;
  config.iterations = 30;
  config.alpha = 0.5;
  const auto& ds = TestData();
  PmtlmModel model(config, ds.posts, ds.interactions);
  ASSERT_TRUE(model.Train().ok());
  double perp = model.Perplexity(ds.posts);
  EXPECT_GT(perp, 1.0);
  EXPECT_LT(perp, model.estimates().V * 0.9);
}

// ------------------------------------------------------------------- TOT --

TEST(TotTest, TrainsOnAllPosts) {
  TotConfig config;
  config.num_topics = 6;
  config.iterations = 30;
  config.alpha = 0.5;
  TotModel model(config, TestData().posts);
  ASSERT_TRUE(model.Train().ok());
  const TotEstimates& est = model.estimates();
  EXPECT_NEAR(std::accumulate(est.topic_weight.begin(),
                              est.topic_weight.end(), 0.0),
              1.0, 1e-6);
  for (int k = 0; k < est.K; ++k) {
    EXPECT_GT(est.beta_a[static_cast<size_t>(k)], 0.0);
    EXPECT_GT(est.beta_b[static_cast<size_t>(k)], 0.0);
  }
}

TEST(TotTest, BetaDensityIntegratesToRoughlyOne) {
  TotConfig config;
  config.num_topics = 4;
  config.iterations = 15;
  TotModel model(config, TestData().posts);
  ASSERT_TRUE(model.Train().ok());
  const TotEstimates& est = model.estimates();
  for (int k = 0; k < est.K; ++k) {
    double integral = 0.0;
    const int steps = 2000;
    for (int s = 0; s < steps; ++s) {
      integral += est.TimeDensity(k, (s + 0.5) / steps) / steps;
    }
    EXPECT_NEAR(integral, 1.0, 0.05) << "topic " << k;
  }
}

TEST(TotTest, SubsetTraining) {
  TotConfig config;
  config.num_topics = 3;
  config.iterations = 10;
  TotModel model(config, TestData().posts);
  std::vector<text::PostId> subset;
  for (text::PostId d = 0; d < 200; ++d) subset.push_back(d);
  ASSERT_TRUE(model.Train(subset).ok());
  int t = model.PredictTimestamp(TestData().posts.words(0));
  EXPECT_GE(t, 0);
  EXPECT_LT(t, TestData().posts.num_time_slices());
}

TEST(TotTest, UnimodalDensityCannotTrackTwoBursts) {
  // Property behind Fig 11 / §3.3: a Beta density has a single interior
  // mode, so its density at two separated burst times cannot both exceed
  // the density at the midpoint... unless it is U-shaped (a<1, b<1), which
  // the clamp avoids for fitted bursts. We check the fitted density is
  // unimodal in the interior.
  TotConfig config;
  config.num_topics = 4;
  config.iterations = 20;
  TotModel model(config, TestData().posts);
  ASSERT_TRUE(model.Train().ok());
  const TotEstimates& est = model.estimates();
  for (int k = 0; k < est.K; ++k) {
    double a = est.beta_a[static_cast<size_t>(k)];
    double b = est.beta_b[static_cast<size_t>(k)];
    if (a <= 1.0 || b <= 1.0) continue;  // edge-peaked fits
    // Count local maxima on a grid.
    int modes = 0;
    double prev = est.TimeDensity(k, 0.01);
    double curr = est.TimeDensity(k, 0.02);
    for (int s = 3; s < 100; ++s) {
      double next = est.TimeDensity(k, s / 100.0);
      if (curr > prev && curr > next) ++modes;
      prev = curr;
      curr = next;
    }
    EXPECT_LE(modes, 1) << "Beta density must be unimodal";
  }
}

// ------------------------------------------------------------------ EUTB --

TEST(EutbTest, TrainsAndPredictsTimestamps) {
  EutbConfig config;
  config.num_topics = 6;
  config.iterations = 30;
  config.alpha = 0.5;
  EutbModel model(config, TestData().posts);
  ASSERT_TRUE(model.Train().ok());
  const EutbEstimates& est = model.estimates();
  EXPECT_GT(est.lambda_user, 0.0);
  EXPECT_LT(est.lambda_user, 1.0);
  EXPECT_NEAR(std::accumulate(est.slice_prior.begin(), est.slice_prior.end(),
                              0.0),
              1.0, 1e-9);
  std::vector<text::WordId> words = {0, 1, 2};
  auto scores = model.TimestampScores(words, 0);
  EXPECT_NEAR(std::accumulate(scores.begin(), scores.end(), 0.0), 1.0, 1e-9);
  int t = model.PredictTimestamp(words, 0);
  EXPECT_GE(t, 0);
  EXPECT_LT(t, est.T);
}

TEST(EutbTest, SmoothedTimeMixturesNormalized) {
  EutbConfig config;
  config.num_topics = 4;
  config.iterations = 15;
  EutbModel model(config, TestData().posts);
  ASSERT_TRUE(model.Train().ok());
  const EutbEstimates& est = model.estimates();
  for (int t = 0; t < est.T; ++t) {
    double total = 0.0;
    for (int k = 0; k < est.K; ++k) total += est.ThetaTime(t, k);
    EXPECT_NEAR(total, 1.0, 1e-6) << "slice " << t;
  }
}

TEST(EutbTest, PerplexityReasonable) {
  EutbConfig config;
  config.num_topics = 6;
  config.iterations = 30;
  config.alpha = 0.5;
  EutbModel model(config, TestData().posts);
  ASSERT_TRUE(model.Train().ok());
  double perp = model.Perplexity(TestData().posts);
  EXPECT_GT(perp, 1.0);
  EXPECT_LT(perp, model.estimates().V * 0.8);
}

// -------------------------------------------------------------- Pipeline --

TEST(PipelineTest, TrainsAndPredicts) {
  PipelineConfig config;
  config.mmsb.num_communities = 4;
  config.mmsb.iterations = 30;
  config.mmsb.rho = 0.5;
  config.tot.num_topics = 4;
  config.tot.iterations = 15;
  config.tot.alpha = 0.5;
  const auto& ds = TestData();
  PipelineModel model(config, ds.posts, ds.interactions);
  ASSERT_TRUE(model.Train().ok());
  std::vector<text::WordId> words = {0, 1, 2};
  auto scores = model.TimestampScores(words, 0);
  EXPECT_EQ(scores.size(), static_cast<size_t>(ds.num_time_slices()));
  EXPECT_NEAR(std::accumulate(scores.begin(), scores.end(), 0.0), 1.0, 1e-9);
  int t = model.PredictTimestamp(words, 3);
  EXPECT_GE(t, 0);
  EXPECT_LT(t, ds.num_time_slices());
}

// ------------------------------------------------------------------- WTM --

TEST(WtmTest, FeaturesInRangeAndScoreCombines) {
  const auto& ds = TestData();
  data::RetweetSplit split = data::SplitRetweets(ds, 0.2, 31, 0);
  WtmModel model(WtmConfig{}, ds.posts, split.train_interactions,
                 split.train);
  ASSERT_TRUE(model.Train().ok());

  const auto& tuple = split.test.front();
  auto words = ds.posts.words(tuple.post);
  for (text::UserId u : tuple.retweeters) {
    double match = model.InterestMatch(u, words);
    EXPECT_GE(match, 0.0);
    EXPECT_LE(match, 1.0 + 1e-9);
    EXPECT_GE(model.Influence(u), 0.0);
    EXPECT_LE(model.Influence(u), 1.0 + 1e-9);
    double score = model.Score(tuple.author, u, words);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0 + 1e-9);
  }
}

TEST(WtmTest, RelationshipReflectsHistory) {
  const auto& ds = TestData();
  data::RetweetSplit split = data::SplitRetweets(ds, 0.2, 31, 0);
  WtmModel model(WtmConfig{}, ds.posts, split.train_interactions,
                 split.train);
  ASSERT_TRUE(model.Train().ok());
  // Pick a training pair with a retweet; relationship must exceed a random
  // unrelated pair's (which is 0). (Not every tuple has retweeters: unseen
  // or ignored posts produce ignorer-only tuples.)
  const data::RetweetTuple* with_retweet = nullptr;
  for (const auto& t : split.train) {
    if (!t.retweeters.empty()) {
      with_retweet = &t;
      break;
    }
  }
  ASSERT_NE(with_retweet, nullptr);
  const auto& tuple = *with_retweet;
  EXPECT_GT(model.Relationship(tuple.author, tuple.retweeters[0]), 0.0);
  EXPECT_DOUBLE_EQ(
      model.Relationship(tuple.retweeters[0], tuple.author) +
          model.Relationship(tuple.author, tuple.author),
      model.Relationship(tuple.retweeters[0], tuple.author));
}

TEST(WtmTest, SeparatesRetweetersFromIgnorers) {
  const auto& ds = TestData();
  data::RetweetSplit split = data::SplitRetweets(ds, 0.2, 31, 0);
  WtmModel model(WtmConfig{}, ds.posts, split.train_interactions,
                 split.train);
  ASSERT_TRUE(model.Train().ok());
  std::vector<eval::ScoredTuple> scored;
  for (const data::RetweetTuple& tuple : split.test) {
    eval::ScoredTuple st;
    auto words = ds.posts.words(tuple.post);
    for (text::UserId u : tuple.retweeters) {
      st.positive_scores.push_back(model.Score(tuple.author, u, words));
    }
    for (text::UserId u : tuple.ignorers) {
      st.negative_scores.push_back(model.Score(tuple.author, u, words));
    }
    scored.push_back(std::move(st));
  }
  EXPECT_GT(eval::AveragedTupleAuc(scored), 0.5);
}

// -------------------------------------------------------------------- TI --

TEST(TiTest, TrainsAndScores) {
  const auto& ds = TestData();
  data::RetweetSplit split = data::SplitRetweets(ds, 0.2, 31, 0);
  TiConfig config;
  config.lda.num_topics = 6;
  config.lda.iterations = 20;
  config.lda.alpha = 0.5;
  TiModel model(config, ds.posts, split.train);
  ASSERT_TRUE(model.Train().ok());

  const auto& tuple = split.test.front();
  auto words = ds.posts.words(tuple.post);
  for (text::UserId u : tuple.retweeters) {
    double score = model.Score(tuple.author, u, words);
    EXPECT_GE(score, 0.0);
  }
}

TEST(TiTest, DirectInfluenceHigherForObservedRetweeters) {
  const auto& ds = TestData();
  data::RetweetSplit split = data::SplitRetweets(ds, 0.2, 31, 0);
  TiConfig config;
  config.lda.num_topics = 6;
  config.lda.iterations = 20;
  config.lda.alpha = 0.5;
  TiModel model(config, ds.posts, split.train);
  ASSERT_TRUE(model.Train().ok());

  // Aggregate influence over train tuples: observed retweeters should get
  // higher average direct influence than ignorers.
  double pos_total = 0.0, neg_total = 0.0;
  int pos_n = 0, neg_n = 0;
  int seen = 0;
  for (const data::RetweetTuple& tuple : split.train) {
    if (seen++ > 200) break;
    int k = model.lda().post_topics()[static_cast<size_t>(tuple.post)];
    for (text::UserId u : tuple.retweeters) {
      pos_total += model.DirectInfluence(tuple.author, u, k);
      ++pos_n;
    }
    for (text::UserId u : tuple.ignorers) {
      neg_total += model.DirectInfluence(tuple.author, u, k);
      ++neg_n;
    }
  }
  ASSERT_GT(pos_n, 0);
  ASSERT_GT(neg_n, 0);
  EXPECT_GT(pos_total / pos_n, neg_total / neg_n);
}

TEST(TiTest, SeparatesRetweetersOnHeldOutTuples) {
  const auto& ds = TestData();
  data::RetweetSplit split = data::SplitRetweets(ds, 0.2, 31, 0);
  TiConfig config;
  config.lda.num_topics = 6;
  config.lda.iterations = 20;
  config.lda.alpha = 0.5;
  TiModel model(config, ds.posts, split.train);
  ASSERT_TRUE(model.Train().ok());
  std::vector<eval::ScoredTuple> scored;
  int used = 0;
  for (const data::RetweetTuple& tuple : split.test) {
    if (used++ >= 100) break;
    eval::ScoredTuple st;
    auto words = ds.posts.words(tuple.post);
    for (text::UserId u : tuple.retweeters) {
      st.positive_scores.push_back(model.Score(tuple.author, u, words));
    }
    for (text::UserId u : tuple.ignorers) {
      st.negative_scores.push_back(model.Score(tuple.author, u, words));
    }
    scored.push_back(std::move(st));
  }
  EXPECT_GT(eval::AveragedTupleAuc(scored), 0.5);
}

}  // namespace
}  // namespace cold::baselines
