// Runtime-dispatched SIMD helpers for the sampler hot paths.
//
// The parallel topic kernel spends its time streaming over the PR-5
// transposed cache rows (contiguous K-length double arrays); these helpers
// vectorize those scans with AVX2 when the CPU has it and fall back to
// plain scalar loops otherwise. Only operations whose vector form is
// bit-identical to the scalar form are offered — elementwise add/sub and
// max reduction (max is order-insensitive) — so results never depend on
// which dispatch target ran. Set COLD_SIMD=off to force the scalar path
// (used by tests to cross-check the dispatch).
#pragma once

#include <cstddef>

namespace cold::simd {

/// True when the AVX2 paths are active (CPU supports AVX2 and COLD_SIMD
/// is not "off"/"scalar"/"0"). Decided once per process.
bool Avx2Enabled();

/// Human-readable dispatch target, "avx2" or "scalar" (for bench JSON).
const char* DispatchName();

/// dst[i] = a[i] + b[i] - c[i]. Arrays may not alias dst except dst==a.
void AddSubRows(const double* a, const double* b, const double* c,
                double* dst, std::size_t n);

/// dst[i] += src[i].
void Accumulate(double* dst, const double* src, std::size_t n);

/// Max over x[0..n); n must be > 0. Inputs must be NaN-free — vector and
/// scalar max disagree on NaN propagation (the log-weight rows are finite
/// by construction, so callers already satisfy this).
double MaxValue(const double* x, std::size_t n);

}  // namespace cold::simd
