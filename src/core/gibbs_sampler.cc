#include "core/gibbs_sampler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/stopwatch.h"

namespace cold::core {

namespace {

/// Registry handles for the serial sampler's per-sweep telemetry, cached
/// once per process. The *_seconds / switch-rate gauges carry the most
/// recent sweep so a per-sweep snapshot series reads as a trajectory;
/// the counters are cumulative.
struct GibbsMetrics {
  obs::Counter* sweeps;
  obs::Counter* tokens_resampled;
  obs::Counter* links_resampled;
  obs::Gauge* sweep_seconds;
  obs::Gauge* post_phase_seconds;
  obs::Gauge* link_phase_seconds;
  obs::Gauge* community_switch_rate;
  obs::Gauge* topic_switch_rate;
  obs::Gauge* train_log_likelihood;
  obs::Gauge* tokens_per_second;
  obs::Gauge* links_per_second;
};

GibbsMetrics& Metrics() {
  auto& registry = obs::Registry::Global();
  static GibbsMetrics metrics{
      registry.GetCounter("cold/gibbs/sweeps"),
      registry.GetCounter("cold/gibbs/tokens_resampled"),
      registry.GetCounter("cold/gibbs/links_resampled"),
      registry.GetGauge("cold/gibbs/sweep_seconds"),
      registry.GetGauge("cold/gibbs/phase_seconds", {{"phase", "post"}}),
      registry.GetGauge("cold/gibbs/phase_seconds", {{"phase", "link"}}),
      registry.GetGauge("cold/gibbs/community_switch_rate"),
      registry.GetGauge("cold/gibbs/topic_switch_rate"),
      registry.GetGauge("cold/gibbs/train_log_likelihood"),
      registry.GetGauge("cold/gibbs/tokens_per_second"),
      registry.GetGauge("cold/gibbs/links_per_second")};
  return metrics;
}

}  // namespace

double ComputeLambda0(const ColdConfig& config, int num_users,
                      int64_t num_links) {
  double n_neg = static_cast<double>(num_users) * (num_users - 1) -
                 static_cast<double>(num_links);
  double c2 = static_cast<double>(config.num_communities) *
              static_cast<double>(config.num_communities);
  double ratio = n_neg / c2;
  if (ratio <= 1.0) return config.lambda1;
  return std::max(config.lambda1, config.kappa * std::log(ratio));
}

ColdGibbsSampler::ColdGibbsSampler(ColdConfig config,
                                   const text::PostStore& posts,
                                   const graph::Digraph* links)
    : config_(config),
      posts_(posts),
      links_(links),
      use_network_(config.use_network && links != nullptr &&
                   links->num_edges() > 0),
      sampler_(config.seed, /*stream=*/3) {}

cold::Status ColdGibbsSampler::Init() {
  COLD_RETURN_NOT_OK(config_.Validate());
  if (!posts_.finalized()) {
    return cold::Status::FailedPrecondition("post store not finalized");
  }
  if (posts_.num_posts() == 0) {
    return cold::Status::InvalidArgument("no posts to train on");
  }
  const int C = config_.num_communities;
  const int K = config_.num_topics;
  int64_t num_links = use_network_ ? links_->num_edges() : 0;
  lambda0_ = use_network_
                 ? ComputeLambda0(config_, posts_.num_users(), num_links)
                 : config_.lambda1;

  // Vocab size: config_.vocab_size when the caller supplied the
  // dataset-wide vocabulary; otherwise derived as max-word-id + 1 over the
  // *training* posts — which under-sizes n_kv/phi when a held-out split
  // holds higher word ids, so callers with a Vocabulary should set it.
  int max_word = 0;
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    for (text::WordId w : posts_.words(d)) max_word = std::max(max_word, w + 1);
  }
  int vocab = max_word;
  if (config_.vocab_size > 0) {
    if (max_word > config_.vocab_size) {
      return cold::Status::InvalidArgument(
          "vocab_size " + std::to_string(config_.vocab_size) +
          " is smaller than max word id + 1 (" + std::to_string(max_word) +
          ")");
    }
    vocab = config_.vocab_size;
  }

  state_ = std::make_unique<ColdState>(posts_.num_users(), C, K,
                                       posts_.num_time_slices(), vocab,
                                       posts_.num_posts(), num_links);
  weights_c_.resize(static_cast<size_t>(C));
  log_weights_k_.resize(static_cast<size_t>(K));
  weights_joint_.resize(static_cast<size_t>(C) * C);
  link_src_weights_.resize(static_cast<size_t>(C));
  link_dst_weights_.resize(static_cast<size_t>(C));

  // Sparse topic path setup (before the init sweep so the add/remove
  // hooks can bump the alias staleness counters). The lgamma table must
  // cover the largest argument the length term can see: n_k (bounded by
  // the corpus token count) plus one post length.
  sparse_active_ = config_.UseSparseTopicSampling();
  if (sparse_active_) {
    alias_bank_.Reset(C, posts_.num_time_slices(), K,
                      config_.ResolvedSparseRebuildBudget());
    alias_weights_.resize(static_cast<size_t>(K));
    int max_len = 0;
    for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
      max_len = std::max(max_len, posts_.length(d));
    }
    lgamma_len_.Build(vocab * config_.beta, posts_.num_tokens() + max_len);
  }

  // Random initialization, counters built incrementally.
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    state_->post_community[static_cast<size_t>(d)] =
        static_cast<int32_t>(sampler_.UniformInt(static_cast<uint32_t>(C)));
    state_->post_topic[static_cast<size_t>(d)] =
        static_cast<int32_t>(sampler_.UniformInt(static_cast<uint32_t>(K)));
    AddPost(d);
  }
  if (use_network_) {
    for (graph::EdgeId e = 0; e < links_->num_edges(); ++e) {
      int s =
          static_cast<int>(sampler_.UniformInt(static_cast<uint32_t>(C)));
      int s2 =
          static_cast<int>(sampler_.UniformInt(static_cast<uint32_t>(C)));
      state_->link_src_community[static_cast<size_t>(e)] = s;
      state_->link_dst_community[static_cast<size_t>(e)] = s2;
      const graph::Edge& edge = links_->edge(e);
      state_->n_ic(edge.src, s)++;
      state_->n_i(edge.src)++;
      state_->n_ic(edge.dst, s2)++;
      state_->n_i(edge.dst)++;
      state_->n_cc(s, s2)++;
    }
  }
  RebuildDerivedTables();
  accumulated_.reset();
  num_accumulated_ = 0;
  iterations_run_ = 0;
  initialized_ = true;
  return cold::Status::OK();
}

void ColdGibbsSampler::RebuildDerivedTables() {
  const int C = config_.num_communities;
  const int K = config_.num_topics;
  const int T = posts_.num_time_slices();
  const int V = state_->V();
  const double alpha = config_.ResolvedAlpha();
  const double epsilon = config_.epsilon;
  const double beta = config_.beta;
  const double teps = T * epsilon;
  const double vbeta = V * beta;

  log_nck_alpha_.resize(static_cast<size_t>(C) * K);
  log_nck_teps_.resize(static_cast<size_t>(C) * K);
  log_nckt_eps_.resize(static_cast<size_t>(C) * K * T);
  for (int c = 0; c < C; ++c) {
    for (int k = 0; k < K; ++k) {
      size_t ck = static_cast<size_t>(c) * K + k;
      log_nck_alpha_[ck] = std::log(state_->n_ck(c, k) + alpha);
      log_nck_teps_[ck] = std::log(state_->n_ck(c, k) + teps);
      for (int t = 0; t < T; ++t) {
        log_nckt_eps_[ck * T + t] = std::log(state_->n_ckt(c, k, t) + epsilon);
      }
    }
  }
  log_nkv_beta_.resize(static_cast<size_t>(K) * V);
  lgamma_nk_vbeta_.resize(static_cast<size_t>(K));
  for (int k = 0; k < K; ++k) {
    for (int v = 0; v < V; ++v) {
      log_nkv_beta_[static_cast<size_t>(k) * V + v] =
          std::log(state_->n_kv(k, v) + beta);
    }
    lgamma_nk_vbeta_[static_cast<size_t>(k)] =
        cold::LGamma(state_->n_k(k) + vbeta);
  }
  w_link_.resize(static_cast<size_t>(C) * C);
  for (int c = 0; c < C; ++c) {
    for (int c2 = 0; c2 < C; ++c2) RefreshLinkDerived(c, c2);
  }
}

void ColdGibbsSampler::RefreshPostDerived(int c, int k, int t,
                                          std::span<const text::WordId> words) {
  if (log_nck_alpha_.empty()) return;  // Init() builds tables afterwards.
  const int K = config_.num_topics;
  const int T = posts_.num_time_slices();
  const int V = state_->V();
  const size_t ck = static_cast<size_t>(c) * K + k;
  log_nck_alpha_[ck] = std::log(state_->n_ck(c, k) + config_.ResolvedAlpha());
  log_nck_teps_[ck] = std::log(state_->n_ck(c, k) + T * config_.epsilon);
  log_nckt_eps_[ck * T + t] =
      std::log(state_->n_ckt(c, k, t) + config_.epsilon);
  // Duplicate words recompute the same entry; posts are short, and the
  // recompute is idempotent.
  for (text::WordId w : words) {
    log_nkv_beta_[static_cast<size_t>(k) * V + w] =
        std::log(state_->n_kv(k, w) + config_.beta);
  }
  lgamma_nk_vbeta_[static_cast<size_t>(k)] =
      cold::LGamma(state_->n_k(k) + V * config_.beta);
}

void ColdGibbsSampler::RefreshLinkDerived(int c, int c2) {
  const int C = config_.num_communities;
  double n = state_->n_cc(c, c2);
  w_link_[static_cast<size_t>(c) * C + c2] =
      (n + config_.lambda1) / (n + lambda0_ + config_.lambda1);
}

double ColdGibbsSampler::MaxDerivedTableDrift() const {
  if (log_nck_alpha_.empty()) return 0.0;
  const int C = config_.num_communities;
  const int K = config_.num_topics;
  const int T = posts_.num_time_slices();
  const int V = state_->V();
  const double alpha = config_.ResolvedAlpha();
  const double epsilon = config_.epsilon;
  const double beta = config_.beta;
  const double teps = T * epsilon;
  const double vbeta = V * beta;

  double drift = 0.0;
  auto probe = [&drift](double cached, double exact) {
    drift = std::max(drift, std::abs(cached - exact));
  };
  for (int c = 0; c < C; ++c) {
    for (int k = 0; k < K; ++k) {
      const size_t ck = static_cast<size_t>(c) * K + k;
      probe(log_nck_alpha_[ck], std::log(state_->n_ck(c, k) + alpha));
      probe(log_nck_teps_[ck], std::log(state_->n_ck(c, k) + teps));
      for (int t = 0; t < T; ++t) {
        probe(log_nckt_eps_[ck * T + t],
              std::log(state_->n_ckt(c, k, t) + epsilon));
      }
    }
  }
  for (int k = 0; k < K; ++k) {
    for (int v = 0; v < V; ++v) {
      probe(log_nkv_beta_[static_cast<size_t>(k) * V + v],
            std::log(state_->n_kv(k, v) + beta));
    }
    probe(lgamma_nk_vbeta_[static_cast<size_t>(k)],
          cold::LGamma(state_->n_k(k) + vbeta));
  }
  for (int c = 0; c < C; ++c) {
    for (int c2 = 0; c2 < C; ++c2) {
      const double n = state_->n_cc(c, c2);
      probe(w_link_[static_cast<size_t>(c) * C + c2],
            (n + config_.lambda1) / (n + lambda0_ + config_.lambda1));
    }
  }
  return drift;
}

void ColdGibbsSampler::RemovePost(text::PostId d) {
  int c = state_->post_community[static_cast<size_t>(d)];
  int k = state_->post_topic[static_cast<size_t>(d)];
  text::UserId i = posts_.author(d);
  state_->n_ic(i, c)--;
  state_->n_i(i)--;
  state_->n_ck(c, k)--;
  state_->n_c(c)--;
  state_->n_ckt(c, k, posts_.time(d))--;
  for (text::WordId w : posts_.words(d)) state_->n_kv(k, w)--;
  state_->n_k(k) -= posts_.length(d);
  RefreshPostDerived(c, k, posts_.time(d), posts_.words(d));
  if (sparse_active_) alias_bank_.NoteCommunityUpdate(c);
}

void ColdGibbsSampler::AddPost(text::PostId d) {
  int c = state_->post_community[static_cast<size_t>(d)];
  int k = state_->post_topic[static_cast<size_t>(d)];
  text::UserId i = posts_.author(d);
  state_->n_ic(i, c)++;
  state_->n_i(i)++;
  state_->n_ck(c, k)++;
  state_->n_c(c)++;
  state_->n_ckt(c, k, posts_.time(d))++;
  for (text::WordId w : posts_.words(d)) state_->n_kv(k, w)++;
  state_->n_k(k) += posts_.length(d);
  RefreshPostDerived(c, k, posts_.time(d), posts_.words(d));
  if (sparse_active_) alias_bank_.NoteCommunityUpdate(c);
}

void ColdGibbsSampler::SamplePostCommunity(text::PostId d) {
  const int C = config_.num_communities;
  const int K = config_.num_topics;
  const int T = posts_.num_time_slices();
  const double rho = config_.ResolvedRho();
  const double alpha = config_.ResolvedAlpha();
  const double epsilon = config_.epsilon;
  const int k = state_->post_topic[static_cast<size_t>(d)];
  const int t = posts_.time(d);
  const text::UserId i = posts_.author(d);

  // Eq. (1); the n_i denominator is constant across c and dropped.
  for (int c = 0; c < C; ++c) {
    double w_member = state_->n_ic(i, c) + rho;
    double w_topic = (state_->n_ck(c, k) + alpha) /
                     (state_->n_c(c) + K * alpha);
    double w_time = (state_->n_ckt(c, k, t) + epsilon) /
                    (state_->n_ck(c, k) + T * epsilon);
    weights_c_[static_cast<size_t>(c)] = w_member * w_topic * w_time;
  }
  state_->post_community[static_cast<size_t>(d)] =
      static_cast<int32_t>(sampler_.Categorical(weights_c_));
}

void ColdGibbsSampler::TopicLogWeights(text::PostId d, int community,
                                       std::span<double> log_weights) const {
  const int K = config_.num_topics;
  const int T = posts_.num_time_slices();
  const int V = state_->V();
  const double beta = config_.beta;
  const double vbeta = V * beta;
  const int t = posts_.time(d);
  const int len = posts_.length(d);

  // Distinct (word, count) pairs are precomputed at PostStore::Finalize()
  // — posts are immutable, so the old per-call O(len^2) dedup was pure
  // overhead on the hot path.
  const auto word_pairs = posts_.word_pairs(d);

  // Eq. (3) in log space: the n_c denominator is constant across k and
  // dropped. The per-token ascending-factorial loops of the reference
  // kernel are collapsed: the community/time terms read per-sweep cached
  // logs (refreshed incrementally as counters change), the word term reads
  // the cached log(n_kv + beta) for the ubiquitous cnt == 1 case, and the
  // length-denominator ascending factorial is an lgamma pair whose base
  // lgamma(n_k + V*beta) is cached — so per (topic, token) work is a table
  // read, not a std::log call.
  const size_t ck0 = static_cast<size_t>(community) * K;
  for (int k = 0; k < K; ++k) {
    const size_t ck = ck0 + k;
    double lw = log_nck_alpha_[ck] + log_nckt_eps_[ck * T + t] -
                log_nck_teps_[ck];
    for (const auto& [w, cnt] : word_pairs) {
      if (cnt == 1) {
        lw += log_nkv_beta_[static_cast<size_t>(k) * V + w];
      } else {
        lw += cold::LogAscendingFactorial(state_->n_kv(k, w) + beta, cnt);
      }
    }
    lw -= cold::LogAscendingFactorial(
        state_->n_k(k) + vbeta, len,
        lgamma_nk_vbeta_[static_cast<size_t>(k)]);
    log_weights[static_cast<size_t>(k)] = lw;
  }
}

double ColdGibbsSampler::TopicLogWeightOne(text::PostId d, int community,
                                           int k) const {
  const int K = config_.num_topics;
  const int T = posts_.num_time_slices();
  const int V = state_->V();
  const double beta = config_.beta;
  const int t = posts_.time(d);
  const size_t ck = static_cast<size_t>(community) * K + k;

  // Same cached-log reads as the dense kernel, for one topic only: the MH
  // accept step needs exact log-weights at just the current and proposed
  // topics, so the per-draw cost is O(post length) instead of
  // O(K * length).
  double lw = log_nck_alpha_[ck] + log_nckt_eps_[ck * T + t] -
              log_nck_teps_[ck];
  for (const auto& [w, cnt] : posts_.word_pairs(d)) {
    if (cnt == 1) {
      lw += log_nkv_beta_[static_cast<size_t>(k) * V + w];
    } else {
      lw += cold::LogAscendingFactorial(state_->n_kv(k, w) + beta, cnt);
    }
  }
  // Length term via the integer-indexed lgamma table when built (two table
  // reads); otherwise the dense kernel's cached-base lgamma pair.
  if (lgamma_len_.built()) {
    lw -= lgamma_len_.LogAscFactorial(state_->n_k(k), posts_.length(d));
  } else {
    lw -= cold::LogAscendingFactorial(
        state_->n_k(k) + V * beta, posts_.length(d),
        lgamma_nk_vbeta_[static_cast<size_t>(k)]);
  }
  return lw;
}

void ColdGibbsSampler::FillTopicPriorWeights(int c, int t,
                                             std::vector<double>* weights) {
  const int K = config_.num_topics;
  const int T = posts_.num_time_slices();
  const double alpha = config_.ResolvedAlpha();
  const double epsilon = config_.epsilon;
  const double teps = T * epsilon;
  weights->resize(static_cast<size_t>(K));
  for (int k = 0; k < K; ++k) {
    const double nck = state_->n_ck(c, k);
    (*weights)[static_cast<size_t>(k)] =
        (nck + alpha) * (state_->n_ckt(c, k, t) + epsilon) / (nck + teps);
  }
}

void ColdGibbsSampler::SamplePostTopicSparse(text::PostId d) {
  const int c = state_->post_community[static_cast<size_t>(d)];
  const int t = posts_.time(d);
  if (alias_bank_.RowDirty(c, t)) {
    FillTopicPriorWeights(c, t, &alias_weights_);
    alias_bank_.RebuildRow(c, t, alias_weights_);
  }
  const int k0 = state_->post_topic[static_cast<size_t>(d)];
  state_->post_topic[static_cast<size_t>(d)] = static_cast<int32_t>(
      MhTopicDraw(alias_bank_.Row(c, t), k0, config_.sparse_mh_steps,
                  sampler_, [&](int k) { return TopicLogWeightOne(d, c, k); }));
}

void ColdGibbsSampler::SamplePostTopic(text::PostId d) {
  if (sparse_active_) {
    SamplePostTopicSparse(d);
    return;
  }
  const int c = state_->post_community[static_cast<size_t>(d)];
  TopicLogWeights(d, c, log_weights_k_);
  state_->post_topic[static_cast<size_t>(d)] =
      static_cast<int32_t>(sampler_.LogCategorical(log_weights_k_));
}

void ColdGibbsSampler::SamplePost(text::PostId d) {
  RemovePost(d);
  SamplePostCommunity(d);
  SamplePostTopic(d);
  AddPost(d);
}

bool ColdGibbsSampler::UseJointLinkSampling() const {
  switch (config_.link_sampling) {
    case LinkSampling::kJoint:
      return true;
    case LinkSampling::kAlternating:
      return false;
    case LinkSampling::kAuto:
      return config_.num_communities <= 48;
  }
  return true;
}

void ColdGibbsSampler::SampleLinkJoint(graph::EdgeId e) {
  const int C = config_.num_communities;
  const double rho = config_.ResolvedRho();
  const graph::Edge& edge = links_->edge(e);
  int s = state_->link_src_community[static_cast<size_t>(e)];
  int s2 = state_->link_dst_community[static_cast<size_t>(e)];

  // Exclude this link (Eq. 2's counters are all "-ii'"). Only the (s, s2)
  // cell of n_cc moves, so the cached w_link table needs exactly one
  // refresh here and one after the draw below.
  state_->n_ic(edge.src, s)--;
  state_->n_ic(edge.dst, s2)--;
  state_->n_cc(s, s2)--;
  RefreshLinkDerived(s, s2);

  // Eq. (2) as a rank-1 outer product times the cached link-weight table:
  // the O(C^2) inner loop is two table reads and two multiplies per cell
  // instead of a division.
  for (int c = 0; c < C; ++c) {
    link_src_weights_[static_cast<size_t>(c)] = state_->n_ic(edge.src, c) + rho;
    link_dst_weights_[static_cast<size_t>(c)] = state_->n_ic(edge.dst, c) + rho;
  }
  for (int c = 0; c < C; ++c) {
    const double w_src = link_src_weights_[static_cast<size_t>(c)];
    const size_t row = static_cast<size_t>(c) * C;
    for (int c2 = 0; c2 < C; ++c2) {
      weights_joint_[row + c2] =
          w_src * link_dst_weights_[static_cast<size_t>(c2)] * w_link_[row + c2];
    }
  }
  int flat = sampler_.Categorical(weights_joint_);
  s = flat / C;
  s2 = flat % C;

  state_->link_src_community[static_cast<size_t>(e)] = s;
  state_->link_dst_community[static_cast<size_t>(e)] = s2;
  state_->n_ic(edge.src, s)++;
  state_->n_ic(edge.dst, s2)++;
  state_->n_cc(s, s2)++;
  RefreshLinkDerived(s, s2);
}

void ColdGibbsSampler::SampleLinkAlternating(graph::EdgeId e) {
  const int C = config_.num_communities;
  const double rho = config_.ResolvedRho();
  const graph::Edge& edge = links_->edge(e);
  int s = state_->link_src_community[static_cast<size_t>(e)];
  int s2 = state_->link_dst_community[static_cast<size_t>(e)];

  state_->n_ic(edge.src, s)--;
  state_->n_ic(edge.dst, s2)--;
  state_->n_cc(s, s2)--;
  RefreshLinkDerived(s, s2);

  // s | s': column s2 of the cached link-weight table.
  for (int c = 0; c < C; ++c) {
    weights_c_[static_cast<size_t>(c)] =
        (state_->n_ic(edge.src, c) + rho) *
        w_link_[static_cast<size_t>(c) * C + s2];
  }
  s = sampler_.Categorical(weights_c_);
  // s' | s: row s of the table.
  const size_t row = static_cast<size_t>(s) * C;
  for (int c2 = 0; c2 < C; ++c2) {
    weights_c_[static_cast<size_t>(c2)] =
        (state_->n_ic(edge.dst, c2) + rho) * w_link_[row + c2];
  }
  s2 = sampler_.Categorical(weights_c_);

  state_->link_src_community[static_cast<size_t>(e)] = s;
  state_->link_dst_community[static_cast<size_t>(e)] = s2;
  state_->n_ic(edge.src, s)++;
  state_->n_ic(edge.dst, s2)++;
  state_->n_cc(s, s2)++;
  RefreshLinkDerived(s, s2);
}

void ColdGibbsSampler::RunIteration() {
  COLD_TRACE_SPAN("gibbs/sweep");
  // Drift insurance for the incrementally-refreshed caches: every entry is
  // a pure function of one counter, so the rebuild is bit-neutral when the
  // increments are correct — the debug build proves that each time.
  if (iterations_run_ > 0 &&
      iterations_run_ % config_.ResolvedDerivedRebuildEvery() == 0) {
    assert(MaxDerivedTableDrift() == 0.0);
    RebuildDerivedTables();
  }
  // Start every sweep from a fully-invalidated alias bank so the sampler
  // state at sweep boundaries — where checkpoints are taken — never
  // depends on staleness carried across sweeps; restore-then-sweep is
  // therefore bit-identical to an uninterrupted run.
  if (sparse_active_) alias_bank_.InvalidateAll();
  double post_seconds = 0.0, link_seconds = 0.0;
  int64_t tokens = 0;
  int64_t switched_c = 0, switched_k = 0;
  {
    cold::ScopedTimer timer(post_seconds);
    for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
      const int32_t old_c = state_->post_community[static_cast<size_t>(d)];
      const int32_t old_k = state_->post_topic[static_cast<size_t>(d)];
      SamplePost(d);
      tokens += posts_.length(d);
      switched_c += state_->post_community[static_cast<size_t>(d)] != old_c;
      switched_k += state_->post_topic[static_cast<size_t>(d)] != old_k;
    }
  }
  if (use_network_) {
    cold::ScopedTimer timer(link_seconds);
    bool joint = UseJointLinkSampling();
    for (graph::EdgeId e = 0; e < links_->num_edges(); ++e) {
      if (joint) {
        SampleLinkJoint(e);
      } else {
        SampleLinkAlternating(e);
      }
    }
  }
  iterations_run_++;

  // Per-sweep telemetry: a dozen relaxed atomics, no-ops when the registry
  // is disabled.
  GibbsMetrics& metrics = Metrics();
  metrics.sweeps->Increment();
  metrics.tokens_resampled->Increment(tokens);
  if (use_network_) metrics.links_resampled->Increment(links_->num_edges());
  metrics.sweep_seconds->Set(post_seconds + link_seconds);
  metrics.post_phase_seconds->Set(post_seconds);
  metrics.link_phase_seconds->Set(link_seconds);
  if (post_seconds > 0.0) {
    metrics.tokens_per_second->Set(static_cast<double>(tokens) / post_seconds);
  }
  if (use_network_ && link_seconds > 0.0) {
    metrics.links_per_second->Set(
        static_cast<double>(links_->num_edges()) / link_seconds);
  }
  double num_posts = static_cast<double>(posts_.num_posts());
  metrics.community_switch_rate->Set(switched_c / num_posts);
  metrics.topic_switch_rate->Set(switched_k / num_posts);
}

cold::Status ColdGibbsSampler::Train() {
  if (!initialized_) {
    return cold::Status::FailedPrecondition("call Init() before Train()");
  }
  // Resume-aware: RunIteration() advances iterations_run_, so a sampler
  // restored from a checkpoint continues mid-schedule with the burn-in and
  // sample-lag arithmetic unchanged.
  while (iterations_run_ < config_.iterations) {
    RunIteration();
    const int sweep = iterations_run_;
    if (config_.log_likelihood_every > 0 &&
        sweep % config_.log_likelihood_every == 0) {
      double ll = TrainingLogLikelihood();
      Metrics().train_log_likelihood->Set(ll);
      COLD_LOG(kInfo) << "iter " << sweep << " log-likelihood=" << ll;
    }
    if (sweep > config_.burn_in &&
        (sweep - config_.burn_in) % config_.sample_lag == 0) {
      ColdEstimates current = EstimatesFromCurrentSample();
      if (accumulated_ == nullptr) {
        accumulated_ = std::make_unique<ColdEstimates>(std::move(current));
      } else {
        COLD_RETURN_NOT_OK(accumulated_->Accumulate(current));
      }
      num_accumulated_++;
    }
    if (sweep_callback_) sweep_callback_(sweep);
    // After the callback, so a checkpoint for this sweep is already on disk
    // when the injected crash fires (the crash-recovery tests depend on
    // this ordering).
    cold::FaultInjector::Global().MaybeCrash("after_sweep", sweep);
  }
  return cold::Status::OK();
}

ColdEstimates ExtractEstimates(const ColdState& state,
                               const ColdConfig& config, double lambda0) {
  ColdEstimates est;
  est.U = state.U();
  est.C = state.C();
  est.K = state.K();
  est.T = state.T();
  est.V = state.V();
  const double rho = config.ResolvedRho();
  const double alpha = config.ResolvedAlpha();

  est.pi.resize(static_cast<size_t>(est.U) * est.C);
  for (int i = 0; i < est.U; ++i) {
    double denom = state.n_i(i) + est.C * rho;
    for (int c = 0; c < est.C; ++c) {
      est.pi[static_cast<size_t>(i) * est.C + c] =
          (state.n_ic(i, c) + rho) / denom;
    }
  }
  est.theta.resize(static_cast<size_t>(est.C) * est.K);
  for (int c = 0; c < est.C; ++c) {
    double denom = state.n_c(c) + est.K * alpha;
    for (int k = 0; k < est.K; ++k) {
      est.theta[static_cast<size_t>(c) * est.K + k] =
          (state.n_ck(c, k) + alpha) / denom;
    }
  }
  est.eta.resize(static_cast<size_t>(est.C) * est.C);
  if (config.exposure_normalized_eta) {
    // Expected membership mass per community from the freshly computed pi.
    std::vector<double> mass(static_cast<size_t>(est.C), 0.0);
    for (int i = 0; i < est.U; ++i) {
      for (int c = 0; c < est.C; ++c) {
        mass[static_cast<size_t>(c)] += est.pi[static_cast<size_t>(i) * est.C + c];
      }
    }
    for (int c = 0; c < est.C; ++c) {
      for (int c2 = 0; c2 < est.C; ++c2) {
        double n = state.n_cc(c, c2);
        double exposure =
            mass[static_cast<size_t>(c)] * mass[static_cast<size_t>(c2)];
        est.eta[static_cast<size_t>(c) * est.C + c2] =
            (n + config.lambda1) /
            (std::max(exposure, n) + lambda0 + config.lambda1);
      }
    }
  } else {
    for (int c = 0; c < est.C; ++c) {
      for (int c2 = 0; c2 < est.C; ++c2) {
        double n = state.n_cc(c, c2);
        est.eta[static_cast<size_t>(c) * est.C + c2] =
            (n + config.lambda1) / (n + lambda0 + config.lambda1);
      }
    }
  }
  est.phi.resize(static_cast<size_t>(est.K) * est.V);
  for (int k = 0; k < est.K; ++k) {
    double denom = state.n_k(k) + est.V * config.beta;
    for (int v = 0; v < est.V; ++v) {
      est.phi[static_cast<size_t>(k) * est.V + v] =
          (state.n_kv(k, v) + config.beta) / denom;
    }
  }
  est.psi.resize(static_cast<size_t>(est.K) * est.C * est.T);
  for (int k = 0; k < est.K; ++k) {
    for (int c = 0; c < est.C; ++c) {
      double denom = state.n_ck(c, k) + est.T * config.epsilon;
      for (int t = 0; t < est.T; ++t) {
        est.psi[(static_cast<size_t>(k) * est.C + c) * est.T + t] =
            (state.n_ckt(c, k, t) + config.epsilon) / denom;
      }
    }
  }
  return est;
}

ColdEstimates ColdGibbsSampler::EstimatesFromCurrentSample() const {
  return ExtractEstimates(*state_, config_, lambda0_);
}

ColdEstimates ColdGibbsSampler::AveragedEstimates() const {
  if (accumulated_ == nullptr || num_accumulated_ == 0) {
    return EstimatesFromCurrentSample();
  }
  ColdEstimates avg = *accumulated_;
  avg.Scale(1.0 / num_accumulated_);
  return avg;
}

double ColdGibbsSampler::TrainingLogLikelihood() const {
  ColdEstimates est = EstimatesFromCurrentSample();
  const int C = est.C;
  const int K = est.K;
  double ll = 0.0;

  std::vector<double> joint(static_cast<size_t>(C) * K);
  std::vector<double> log_word(static_cast<size_t>(K));
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    text::UserId i = posts_.author(d);
    int t = posts_.time(d);
    for (int k = 0; k < K; ++k) {
      double lw = 0.0;
      for (text::WordId w : posts_.words(d)) lw += std::log(est.Phi(k, w));
      log_word[static_cast<size_t>(k)] = lw;
    }
    for (int c = 0; c < C; ++c) {
      for (int k = 0; k < K; ++k) {
        joint[static_cast<size_t>(c) * K + k] =
            std::log(est.Pi(i, c)) + std::log(est.Theta(c, k)) +
            log_word[static_cast<size_t>(k)] + std::log(est.Psi(k, c, t));
      }
    }
    ll += cold::LogSumExp(joint);
  }
  if (use_network_) {
    for (graph::EdgeId e = 0; e < links_->num_edges(); ++e) {
      const graph::Edge& edge = links_->edge(e);
      double p = 0.0;
      for (int c = 0; c < C; ++c) {
        for (int c2 = 0; c2 < C; ++c2) {
          p += est.Pi(edge.src, c) * est.Pi(edge.dst, c2) * est.Eta(c, c2);
        }
      }
      ll += std::log(std::max(p, 1e-300));
    }
  }
  return ll;
}

}  // namespace cold::core
