# Empty compiler generated dependencies file for fig06_fluctuation.
# This may be replaced when dependencies are built.
