#include "dist/delta_codec.h"

#include <chrono>
#include <cstring>
#include <type_traits>

#include "dist/net_fault.h"
#include "util/fileio.h"

namespace cold::dist {

namespace {

constexpr size_t kHeaderBytes = 36;

// Little append/cursor helpers mirroring checkpoint.cc's serializer style:
// fixed-width host-endian fields, every read bounds-checked.

template <typename T>
void Append(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

cold::Status Truncated(const char* what) {
  return cold::Status::IOError(std::string("truncated ") + what +
                               " payload");
}

}  // namespace

cold::Status WriteFrame(Transport* transport, FrameType type,
                        int32_t sender_rank, uint64_t superstep,
                        std::string_view payload, int timeout_ms) {
  NetFaultInjector::Global().MaybeStall();
  // One contiguous buffer, one Send: the transport's send mutex then makes
  // the whole frame atomic against a concurrent heartbeat.
  std::string wire;
  wire.reserve(kHeaderBytes + payload.size());
  Append(&wire, kWireMagic);
  Append(&wire, kWireVersion);
  Append(&wire, static_cast<uint32_t>(type));
  Append(&wire, sender_rank);
  Append(&wire, superstep);
  Append(&wire, static_cast<uint64_t>(payload.size()));
  Append(&wire, cold::Crc32(payload));
  wire.append(payload);
  if (type == FrameType::kDelta || type == FrameType::kGlobal) {
    if (NetFaultInjector::Global().OnDataFrame(superstep, &wire,
                                               kHeaderBytes) ==
        NetFaultMode::kDrop) {
      return cold::Status::OK();  // the frame evaporates on the "wire"
    }
  }
  return transport->SendDeadline(wire.data(), wire.size(), timeout_ms);
}

cold::Result<Frame> ReadFrame(Transport* transport, uint64_t max_payload,
                              int timeout_ms) {
  // Header and payload share one wall-clock budget.
  const auto start = std::chrono::steady_clock::now();
  char header[kHeaderBytes];
  COLD_RETURN_NOT_OK(
      transport->RecvDeadline(header, sizeof(header), timeout_ms));
  Cursor cursor(std::string_view(header, sizeof(header)));
  uint32_t magic = 0, version = 0, type = 0, crc = 0;
  uint64_t payload_size = 0;
  Frame frame;
  cursor.Read(&magic);
  cursor.Read(&version);
  cursor.Read(&type);
  cursor.Read(&frame.sender_rank);
  cursor.Read(&frame.superstep);
  cursor.Read(&payload_size);
  cursor.Read(&crc);
  if (magic != kWireMagic) {
    return cold::Status::IOError("bad frame magic (not a COLD dist peer?)");
  }
  if (version != kWireVersion) {
    return cold::Status::IOError("unsupported wire version " +
                                 std::to_string(version));
  }
  if (type < static_cast<uint32_t>(FrameType::kHello) ||
      type > static_cast<uint32_t>(FrameType::kHeartbeat)) {
    return cold::Status::IOError("unknown frame type " +
                                 std::to_string(type));
  }
  if (payload_size > max_payload) {
    return cold::Status::IOError("frame payload of " +
                                 std::to_string(payload_size) +
                                 " bytes exceeds the sanity limit");
  }
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(payload_size);
  if (payload_size > 0) {
    int remaining_ms = timeout_ms;
    if (timeout_ms >= 0) {
      auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
      remaining_ms = spent >= timeout_ms
                         ? 0
                         : timeout_ms - static_cast<int>(spent);
    }
    COLD_RETURN_NOT_OK(transport->RecvDeadline(frame.payload.data(),
                                               payload_size, remaining_ms));
  }
  if (cold::Crc32(frame.payload) != crc) {
    return cold::Status::IOError("frame payload CRC mismatch");
  }
  return frame;
}

std::string EncodeHello(const HelloPayload& hello) {
  std::string out;
  Append(&out, hello.rank);
  Append(&out, hello.num_nodes);
  Append(&out, hello.seed);
  Append(&out, hello.iterations);
  Append(&out, hello.num_communities);
  Append(&out, hello.num_topics);
  Append(&out, hello.threads);
  Append(&out, hello.data_fingerprint);
  Append(&out, static_cast<uint64_t>(hello.checkpoint_sweeps.size()));
  for (int32_t sweep : hello.checkpoint_sweeps) Append(&out, sweep);
  return out;
}

cold::Status DecodeHello(std::string_view payload, HelloPayload* out) {
  Cursor cursor(payload);
  uint64_t num_sweeps = 0;
  if (!cursor.Read(&out->rank) || !cursor.Read(&out->num_nodes) ||
      !cursor.Read(&out->seed) || !cursor.Read(&out->iterations) ||
      !cursor.Read(&out->num_communities) ||
      !cursor.Read(&out->num_topics) || !cursor.Read(&out->threads) ||
      !cursor.Read(&out->data_fingerprint) || !cursor.Read(&num_sweeps)) {
    return Truncated("hello");
  }
  out->checkpoint_sweeps.clear();
  out->checkpoint_sweeps.reserve(num_sweeps);
  for (uint64_t i = 0; i < num_sweeps; ++i) {
    int32_t sweep = 0;
    if (!cursor.Read(&sweep)) return Truncated("hello");
    out->checkpoint_sweeps.push_back(sweep);
  }
  if (!cursor.exhausted()) return Truncated("hello");
  return cold::Status::OK();
}

std::string EncodeWelcome(const WelcomePayload& welcome) {
  std::string out;
  Append(&out, welcome.resume_sweep);
  return out;
}

cold::Status DecodeWelcome(std::string_view payload, WelcomePayload* out) {
  Cursor cursor(payload);
  if (!cursor.Read(&out->resume_sweep) || !cursor.exhausted()) {
    return Truncated("welcome");
  }
  return cold::Status::OK();
}

std::string EncodeUpdate(const core::SuperstepUpdate& update) {
  std::string out;
  out.reserve(16 + update.count_deltas.size() * 8 +
              (update.post_updates.size() + update.link_updates.size()) * 12);
  Append(&out, static_cast<uint64_t>(update.count_deltas.size()));
  for (const auto& [idx, delta] : update.count_deltas) {
    Append(&out, idx);
    Append(&out, delta);
  }
  Append(&out, static_cast<uint64_t>(update.post_updates.size()));
  for (const auto& entry : update.post_updates) {
    Append(&out, entry[0]);
    Append(&out, entry[1]);
    Append(&out, entry[2]);
  }
  Append(&out, static_cast<uint64_t>(update.link_updates.size()));
  for (const auto& entry : update.link_updates) {
    Append(&out, entry[0]);
    Append(&out, entry[1]);
    Append(&out, entry[2]);
  }
  return out;
}

cold::Status DecodeUpdate(std::string_view payload,
                          core::SuperstepUpdate* out) {
  Cursor cursor(payload);
  uint64_t n = 0;
  if (!cursor.Read(&n)) return Truncated("update");
  out->count_deltas.clear();
  out->count_deltas.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t idx = 0;
    int32_t delta = 0;
    if (!cursor.Read(&idx) || !cursor.Read(&delta)) {
      return Truncated("update");
    }
    out->count_deltas.emplace_back(idx, delta);
  }
  if (!cursor.Read(&n)) return Truncated("update");
  out->post_updates.clear();
  out->post_updates.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::array<int32_t, 3> entry{};
    if (!cursor.Read(&entry[0]) || !cursor.Read(&entry[1]) ||
        !cursor.Read(&entry[2])) {
      return Truncated("update");
    }
    out->post_updates.push_back(entry);
  }
  if (!cursor.Read(&n)) return Truncated("update");
  out->link_updates.clear();
  out->link_updates.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::array<int32_t, 3> entry{};
    if (!cursor.Read(&entry[0]) || !cursor.Read(&entry[1]) ||
        !cursor.Read(&entry[2])) {
      return Truncated("update");
    }
    out->link_updates.push_back(entry);
  }
  if (!cursor.exhausted()) return Truncated("update");
  return cold::Status::OK();
}

}  // namespace cold::dist
