# Empty dependencies file for fig07_timelag.
# This may be replaced when dependencies are built.
