file(REMOVE_RECURSE
  "../bench/fig15_prediction_time"
  "../bench/fig15_prediction_time.pdb"
  "CMakeFiles/fig15_prediction_time.dir/fig15_prediction_time.cc.o"
  "CMakeFiles/fig15_prediction_time.dir/fig15_prediction_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_prediction_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
