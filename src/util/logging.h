// Minimal leveled logging. Library code logs through this so examples and
// benches can silence training chatter (`Logger::SetLevel`) and tests can
// capture it (`Logger::SetSink`).
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace cold {

/// \brief Log severity levels, ordered.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide logging configuration and sink.
class Logger {
 public:
  /// Receives every emitted record (already level-filtered). The sink owns
  /// formatting and output; the default sink writes
  /// `[<monotonic seconds>] [<LEVEL>] <msg>` to stderr.
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Sets the minimum level that is emitted (default kInfo).
  static void SetLevel(LogLevel level);

  /// Current minimum level.
  static LogLevel GetLevel();

  /// Replaces the output sink. Passing an empty function restores the
  /// stderr default. Sinks are invoked serialized under the log mutex.
  static void SetSink(Sink sink);

  /// Seconds on the monotonic clock since the process first logged (the
  /// timestamp the default sink prints).
  static double MonotonicSeconds();

  /// Emits one line at `level` if `level >= GetLevel()`.
  static void Log(LogLevel level, const std::string& msg);
};

namespace internal {

/// RAII line builder used by the COLD_LOG macro.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define COLD_LOG(level) \
  ::cold::internal::LogMessage(::cold::LogLevel::level)

}  // namespace cold
