// Influential community and user identification on a topic (§6.6, Fig 16).
#pragma once

#include <vector>

#include "core/cold_estimates.h"
#include "apps/independent_cascade.h"

namespace cold::apps {

/// \brief Builds the community-level diffusion graph for topic k:
/// edge weights zeta_kcc' = theta_ck * theta_c'k * eta_cc' (Eq. 4),
/// optionally rescaled so the maximum edge equals `max_edge_prob` (keeps IC
/// spreads informative when raw zetas are tiny).
DiffusionGraph BuildTopicDiffusionGraph(const core::EstimatesView& estimates,
                                        int topic,
                                        double max_edge_prob = 0.0);

/// \brief A community ranked by influence degree on one topic.
struct CommunityInfluence {
  int community = -1;
  /// Expected IC spread with this community as the single seed.
  double influence_degree = 0.0;
  /// The community's interest in the topic (theta_ck).
  double topic_interest = 0.0;
};

/// \brief Ranks all communities by single-seed expected IC spread on the
/// topic's diffusion graph (descending).
std::vector<CommunityInfluence> RankCommunitiesByInfluence(
    const core::EstimatesView& estimates, int topic, int trials,
    uint64_t seed);

/// \brief Per-user influence degree on a topic: membership-weighted sum of
/// community influence degrees (users inherit the influence of the
/// communities they engage in, weighted by pi).
std::vector<double> UserInfluenceDegrees(
    const core::ColdEstimates& estimates,
    const std::vector<CommunityInfluence>& community_influence);

/// \brief Fig-16 pentagon coordinates: each user is placed at the
/// pi-weighted convex combination of the anchor points of the top
/// `num_anchors - 1` influential communities plus an "other communities"
/// anchor. Returns (x, y) per user.
std::vector<std::pair<double, double>> PentagonCoordinates(
    const core::ColdEstimates& estimates,
    const std::vector<CommunityInfluence>& ranked, int num_anchors = 5);

}  // namespace cold::apps
