#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/simd.h"

namespace cold {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) { Seed(seed, stream); }

void Pcg32::Seed(uint64_t seed, uint64_t stream) {
  state_ = 0;
  inc_ = (stream << 1u) | 1u;
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Pcg32::NextU32() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Pcg32::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

double Pcg32::NextDouble() {
  // 53 random bits into [0,1).
  return (NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

uint32_t Pcg32::NextBounded(uint32_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t m = static_cast<uint64_t>(NextU32()) * bound;
  uint32_t l = static_cast<uint32_t>(m);
  if (l < bound) {
    uint32_t t = -bound % bound;
    while (l < t) {
      m = static_cast<uint64_t>(NextU32()) * bound;
      l = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

double RandomSampler::Normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * Uniform() - 1.0;
    v = 2.0 * Uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double RandomSampler::Gamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia-Tsang trick).
    double u = Uniform();
    while (u == 0.0) u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double RandomSampler::Beta(double a, double b) {
  double x = Gamma(a);
  double y = Gamma(b);
  return x / (x + y);
}

int RandomSampler::Categorical(std::span<const double> weights, double total) {
  assert(!weights.empty());
  if (total < 0.0) {
    total = 0.0;
    for (double w : weights) total += w;
  }
  // Degenerate mass — all-zero weights (e.g. a post whose author has no
  // surviving community evidence) or a non-finite total: fall back to a
  // uniform draw rather than letting whatever index falls out of the CDF
  // scan win. NaN totals fail the > 0 comparison, so one branch covers
  // both cases.
  if (!(total > 0.0) || !std::isfinite(total)) {
    return static_cast<int>(
        UniformInt(static_cast<uint32_t>(weights.size())));
  }
  const double u01 = Uniform();
  double u = u01 * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int>(i);
  }
  // Falling off the end means the caller-supplied total overshoots the
  // actual mass (stale cached total), not just FP slack: silently returning
  // the last bucket would give it all the excess probability. `acc` now
  // holds the internally computed sum, so rescan against it. Conditioned on
  // the scan having fallen off, u01 * total is uniform on [acc, total), so
  // the remap below is uniform on [0, acc): the redraw is unbiased without
  // consuming another RNG draw (which would shift the fixed-seed
  // trajectories of callers passing exact totals). Reusing u01 * acc
  // directly would NOT work — u01 is conditioned on landing past the
  // actual mass, so it would dump everything back onto the tail buckets.
  if (acc > 0.0 && std::isfinite(acc) && total > acc) {
    u = (u01 * total - acc) / (total - acc) * acc;
    double acc2 = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc2 += weights[i];
      if (u < acc2) return static_cast<int>(i);
    }
  }
  // Floating-point slack: return the last positive-weight entry.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return static_cast<int>(i - 1);
  }
  return static_cast<int>(weights.size()) - 1;
}

int RandomSampler::LogCategorical(std::span<const double> log_weights) {
  assert(!log_weights.empty());
  // Vectorized max-shift scan (bit-identical to the scalar loop; see
  // util/simd.h).
  double max_lw = simd::MaxValue(log_weights.data(), log_weights.size());
  // Non-finite maximum — all -inf (every outcome impossible, e.g.
  // degenerate counters for an unseen author), a +inf entry, or NaN:
  // uniform fallback, mirroring Categorical's guard.
  if (!std::isfinite(max_lw)) {
    return static_cast<int>(
        UniformInt(static_cast<uint32_t>(log_weights.size())));
  }
  double total = 0.0;
  // A scratch buffer would avoid this allocation, but callers in hot loops
  // use Categorical with ratio-form weights instead.
  std::vector<double> w(log_weights.size());
  for (size_t i = 0; i < log_weights.size(); ++i) {
    w[i] = std::exp(log_weights[i] - max_lw);
    total += w[i];
  }
  return Categorical(w, total);
}

std::vector<double> RandomSampler::Dirichlet(std::span<const double> alpha) {
  std::vector<double> x(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    x[i] = Gamma(alpha[i]);
    total += x[i];
  }
  if (total <= 0.0) {
    // Degenerate underflow (all-tiny alphas): fall back to uniform.
    std::fill(x.begin(), x.end(), 1.0 / static_cast<double>(x.size()));
    return x;
  }
  for (double& v : x) v /= total;
  return x;
}

std::vector<double> RandomSampler::SymmetricDirichlet(double alpha, int n) {
  std::vector<double> a(static_cast<size_t>(n), alpha);
  return Dirichlet(a);
}

std::vector<int> RandomSampler::Multinomial(int n, std::span<const double> p) {
  std::vector<int> counts(p.size(), 0);
  for (int i = 0; i < n; ++i) {
    counts[static_cast<size_t>(Categorical(p, 1.0))]++;
  }
  return counts;
}

std::vector<int> RandomSampler::SampleWithoutReplacement(int n, int k) {
  assert(k <= n);
  std::vector<int> pool(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<size_t>(i)] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformInt(static_cast<uint32_t>(n - i)));
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
  }
  pool.resize(static_cast<size_t>(k));
  return pool;
}

std::vector<double> RandomSampler::MakeZipfTable(int n, double s) {
  std::vector<double> cdf(static_cast<size_t>(n));
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[static_cast<size_t>(i)] = total;
  }
  for (double& v : cdf) v /= total;
  return cdf;
}

}  // namespace cold
