file(REMOVE_RECURSE
  "../bench/fig11_timestamp"
  "../bench/fig11_timestamp.pdb"
  "CMakeFiles/fig11_timestamp.dir/fig11_timestamp.cc.o"
  "CMakeFiles/fig11_timestamp.dir/fig11_timestamp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_timestamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
