#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/logging.h"

namespace cold::obs {

// ------------------------------------------------------------- Histogram --

Histogram::Histogram(HistogramOptions options) {
  int n = std::max(1, options.num_buckets);
  double bound = std::max(options.min_upper_bound, 1e-300);
  double growth = std::max(options.growth, 1.0 + 1e-9);
  bounds_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    bounds_.push_back(bound);
    bound *= growth;
  }
  counts_ = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
}

void Histogram::Observe(double value) {
  if (!internal::MetricsEnabled()) return;
  // First bound >= value; past-the-end lands in the overflow slot.
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double EstimateQuantile(const std::vector<double>& upper_bounds,
                        const std::vector<int64_t>& bucket_counts, double q) {
  int64_t total = 0;
  for (int64_t c : bucket_counts) total += c;
  if (total <= 0 || upper_bounds.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double target = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    int64_t in_bucket = bucket_counts[i];
    if (in_bucket <= 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i >= upper_bounds.size()) {
        // Overflow bucket is unbounded; clamp to the last finite edge.
        return upper_bounds.back();
      }
      double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
      double upper = upper_bounds[i];
      double into = target - static_cast<double>(cumulative);
      return lower + (upper - lower) * into / static_cast<double>(in_bucket);
    }
    cumulative += in_bucket;
  }
  // q == 1 with all mass in earlier buckets, or rounding: last seen edge.
  return upper_bounds.back();
}

double HistogramSnapshot::Quantile(double q) const {
  return EstimateQuantile(upper_bounds, bucket_counts, q);
}

// -------------------------------------------------------------- Registry --

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Entry* Registry::FindOrCreate(const std::string& name,
                                        const Labels& labels, Kind kind,
                                        const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) family.kind = kind;
  if (family.kind != kind) {
    COLD_LOG(kError) << "metric '" << name
                     << "' already registered with a different kind";
    return nullptr;
  }
  for (Entry& entry : family.entries) {
    if (entry.labels == labels) return &entry;
  }
  Entry entry;
  entry.labels = labels;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(options);
      break;
  }
  family.entries.push_back(std::move(entry));
  return &family.entries.back();
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  Entry* entry = FindOrCreate(name, labels, Kind::kCounter, {});
  if (entry == nullptr) {
    static Counter* dummy = new Counter();  // detached, never exported
    return dummy;
  }
  return entry->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  Entry* entry = FindOrCreate(name, labels, Kind::kGauge, {});
  if (entry == nullptr) {
    static Gauge* dummy = new Gauge();
    return dummy;
  }
  return entry->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels,
                                  const HistogramOptions& options) {
  Entry* entry = FindOrCreate(name, labels, Kind::kHistogram, options);
  if (entry == nullptr) {
    static Histogram* dummy = new Histogram();
    return dummy;
  }
  return entry->histogram.get();
}

TelemetrySnapshot Registry::Snapshot() const {
  TelemetrySnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    for (const Entry& entry : family.entries) {
      switch (family.kind) {
        case Kind::kCounter:
          snapshot.counters.push_back(
              {name, entry.labels, entry.counter->Value()});
          break;
        case Kind::kGauge:
          snapshot.gauges.push_back(
              {name, entry.labels, entry.gauge->Value()});
          break;
        case Kind::kHistogram: {
          HistogramSnapshot h;
          h.name = name;
          h.labels = entry.labels;
          h.upper_bounds = entry.histogram->upper_bounds();
          h.bucket_counts = entry.histogram->bucket_counts();
          h.count = entry.histogram->count();
          h.sum = entry.histogram->sum();
          snapshot.histograms.push_back(std::move(h));
          break;
        }
      }
    }
  }
  return snapshot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, family] : families_) {
    for (Entry& entry : family.entries) {
      if (entry.counter != nullptr) entry.counter->Reset();
      if (entry.gauge != nullptr) entry.gauge->Reset();
      if (entry.histogram != nullptr) entry.histogram->Reset();
    }
  }
}

void Registry::DumpJson(std::ostream& os) const {
  obs::DumpJson(Snapshot(), os);
}

void Registry::DumpPrometheusText(std::ostream& os) const {
  obs::DumpPrometheusText(Snapshot(), os);
}

// ------------------------------------------------------------- Exporters --

namespace {

void JsonEscape(const std::string& in, std::ostream& os) {
  for (char c : in) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void JsonNumber(double v, std::ostream& os) {
  // JSON has no NaN/Inf literals; clamp to null.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void JsonLabels(const Labels& labels, std::ostream& os) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    JsonEscape(k, os);
    os << "\":\"";
    JsonEscape(v, os);
    os << "\"";
  }
  os << "}";
}

/// Prometheus metric/label names allow [a-zA-Z0-9_:] only.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      c = '_';
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PromEscapeValue(const std::string& value) {
  std::string out;
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Renders `{k1="v1",k2="v2"}` (empty string for no labels). `extra` lets
/// histogram buckets append their `le` label.
std::string PromLabels(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += PromName(k) + "=\"" + PromEscapeValue(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

std::string PromDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void DumpJson(const TelemetrySnapshot& snapshot, std::ostream& os) {
  os << "{\"counters\":[";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSnapshot& c = snapshot.counters[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"";
    JsonEscape(c.name, os);
    os << "\",\"labels\":";
    JsonLabels(c.labels, os);
    os << ",\"value\":" << c.value << "}";
  }
  os << "],\"gauges\":[";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSnapshot& g = snapshot.gauges[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"";
    JsonEscape(g.name, os);
    os << "\",\"labels\":";
    JsonLabels(g.labels, os);
    os << ",\"value\":";
    JsonNumber(g.value, os);
    os << "}";
  }
  os << "],\"histograms\":[";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"";
    JsonEscape(h.name, os);
    os << "\",\"labels\":";
    JsonLabels(h.labels, os);
    os << ",\"count\":" << h.count << ",\"sum\":";
    JsonNumber(h.sum, os);
    // Empty histograms export null (the JSON spelling of NaN).
    os << ",\"quantiles\":{\"p50\":";
    JsonNumber(h.Quantile(0.50), os);
    os << ",\"p90\":";
    JsonNumber(h.Quantile(0.90), os);
    os << ",\"p99\":";
    JsonNumber(h.Quantile(0.99), os);
    os << "},\"buckets\":[";
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (b > 0) os << ",";
      os << "{\"le\":";
      if (b < h.upper_bounds.size()) {
        JsonNumber(h.upper_bounds[b], os);
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << h.bucket_counts[b] << "}";
    }
    os << "]}";
  }
  os << "]}";
}

void DumpPrometheusText(const TelemetrySnapshot& snapshot, std::ostream& os) {
  std::string last_type_line;  // emit # TYPE once per family
  auto type_line = [&](const std::string& name, const char* type) {
    std::string line = "# TYPE " + name + " " + type + "\n";
    if (line != last_type_line) {
      os << line;
      last_type_line = std::move(line);
    }
  };
  for (const CounterSnapshot& c : snapshot.counters) {
    std::string name = PromName(c.name);
    type_line(name, "counter");
    os << name << PromLabels(c.labels) << " " << c.value << "\n";
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    std::string name = PromName(g.name);
    type_line(name, "gauge");
    os << name << PromLabels(g.labels) << " " << PromDouble(g.value) << "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    std::string name = PromName(h.name);
    type_line(name, "histogram");
    int64_t cumulative = 0;
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      cumulative += h.bucket_counts[b];
      std::string le = b < h.upper_bounds.size()
                           ? PromDouble(h.upper_bounds[b])
                           : "+Inf";
      os << name << "_bucket"
         << PromLabels(h.labels, "le=\"" + le + "\"") << " " << cumulative
         << "\n";
    }
    os << name << "_sum" << PromLabels(h.labels) << " " << PromDouble(h.sum)
       << "\n";
    os << name << "_count" << PromLabels(h.labels) << " " << h.count << "\n";
    // Summary-style estimated quantiles on a sibling series so dashboards
    // get p50/p90/p99 without running histogram_quantile() bucket math.
    // Label values are fixed literals: PromDouble's round-trip precision
    // would render 0.9 as 0.90000000000000002.
    constexpr std::pair<double, const char*> kQuantiles[] = {
        {0.50, "0.5"}, {0.90, "0.9"}, {0.99, "0.99"}};
    for (const auto& [q, label] : kQuantiles) {
      os << name << "_quantile"
         << PromLabels(h.labels, std::string("quantile=\"") + label + "\"")
         << " " << PromDouble(h.Quantile(q)) << "\n";
    }
  }
}

}  // namespace cold::obs
