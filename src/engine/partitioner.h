// Vertex partitioning across simulated cluster nodes, plus communication
// accounting for edges that cross partitions.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/property_graph.h"

namespace cold::engine {

/// \brief Assigns vertices to `num_nodes` simulated machines.
///
/// The default strategy is modulo placement (GraphLab's random hash
/// placement degenerates to this for dense ids). A custom assignment can be
/// installed for locality experiments.
class Partitioner {
 public:
  /// Modulo partition of `num_vertices` ids over `num_nodes` nodes.
  Partitioner(int32_t num_vertices, int num_nodes);

  /// Installs an explicit assignment; `assignment[v]` in [0, num_nodes).
  void SetAssignment(std::vector<int> assignment);

  int num_nodes() const { return num_nodes_; }

  /// The node owning vertex `v`.
  int NodeOf(VertexId v) const {
    return assignment_[static_cast<size_t>(v)];
  }

  /// True iff `e`'s endpoints live on different nodes.
  template <typename VData, typename EData>
  bool IsCut(const PropertyGraph<VData, EData>& g, EdgeId e) const {
    return NodeOf(g.src(e)) != NodeOf(g.dst(e));
  }

  /// Number of vertices owned by each node.
  std::vector<int64_t> NodeLoads() const;

 private:
  int num_nodes_;
  std::vector<int> assignment_;
};

}  // namespace cold::engine
