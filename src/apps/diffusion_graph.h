// Fig-5 style topic diffusion summaries: for one topic, the most engaged
// communities, their interest pies, their temporal popularity curves, and
// the strongest zeta edges between them.
#pragma once

#include <string>
#include <vector>

#include "core/cold_estimates.h"
#include "text/vocabulary.h"

namespace cold::apps {

/// \brief One community node of the diffusion summary.
struct DiffusionNode {
  int community = -1;
  /// Top-5 interested topics of the community (the "pie chart").
  std::vector<int> top_topics;
  std::vector<double> top_topic_weights;
  /// The focal topic's interest level in this community.
  double focus_interest = 0.0;
  /// psi_kc series of the focal topic inside this community.
  std::vector<double> popularity;
};

/// \brief One directed influence edge of the summary.
struct DiffusionArc {
  int from_community = -1;
  int to_community = -1;
  /// zeta_kcc' — drawn as edge thickness in Fig 5.
  double strength = 0.0;
};

/// \brief A complete topic diffusion summary.
struct TopicDiffusionSummary {
  int topic = -1;
  /// Top words of the topic (the word cloud).
  std::vector<int> top_words;
  std::vector<DiffusionNode> nodes;
  std::vector<DiffusionArc> arcs;
};

/// \brief Extracts the Fig-5 summary: the `num_communities` communities
/// most interested in `topic`, each with its top-5 topic pie and psi curve,
/// and the `num_arcs` strongest zeta edges among them.
TopicDiffusionSummary SummarizeTopicDiffusion(
    const core::ColdEstimates& estimates, int topic, int num_communities = 6,
    int num_arcs = 10, int num_words = 12);

/// \brief Renders the summary as indented text (word list, per-node pies and
/// sparkline-ish curves, arcs); `vocabulary` may be null to print word ids.
std::string RenderTopicDiffusion(const TopicDiffusionSummary& summary,
                                 const text::Vocabulary* vocabulary);

}  // namespace cold::apps
