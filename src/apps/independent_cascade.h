// Independent Cascade (Goldenberg et al. 2001) on the extracted
// community-level diffusion graph, used to identify influential communities
// (§6.6): each newly-activated node gets one chance to activate each
// neighbor with the edge's probability.
#pragma once

#include <vector>

#include "util/rng.h"

namespace cold::apps {

/// \brief A dense probability-weighted directed graph: prob[u][v] is the
/// activation probability of v by u. Diagonal entries are ignored.
using DiffusionGraph = std::vector<std::vector<double>>;

/// \brief One IC simulation from `seeds`; returns the activated set size
/// (including seeds).
int SimulateCascadeOnce(const DiffusionGraph& graph,
                        const std::vector<int>& seeds,
                        cold::RandomSampler* sampler);

/// \brief Monte-Carlo estimate of the expected spread sigma(seeds) over
/// `trials` simulations.
double ExpectedSpread(const DiffusionGraph& graph,
                      const std::vector<int>& seeds, int trials,
                      cold::RandomSampler* sampler);

/// \brief Influence degree of every node: expected spread with that single
/// node as the seed set (§6.6's per-community influence degree).
std::vector<double> SingleSeedInfluence(const DiffusionGraph& graph,
                                        int trials, uint64_t seed);

/// \brief Greedy influence maximization (Kempe et al. 2003): picks
/// `budget` seeds maximizing marginal expected spread.
std::vector<int> GreedySeedSelection(const DiffusionGraph& graph, int budget,
                                     int trials, uint64_t seed);

}  // namespace cold::apps
