#!/usr/bin/env bash
# Crash/recovery acceptance check for fault-tolerant training:
#
#   cold_generate -> clean train (reference model)
#                 -> train again, SIGKILL'd mid-run via COLD_FAULT_POINT
#                 -> resume from the newest checkpoint
#                 -> resumed model must be byte-identical to the reference
#
# A second leg corrupts the newest checkpoint (truncation) before resuming:
# the loader must detect it, fall back to the previous rotation entry, and
# still converge to the byte-identical model.
#
# Usage: tools/crashloop_train.sh [build-dir] [iterations] [crash-sweep]
#        crash-sweep defaults to a random sweep in the middle of the run.
set -euo pipefail

BUILD_DIR="${1:-build}"
ITERATIONS="${2:-40}"
CRASH_SWEEP="${3:-$(( (RANDOM % (ITERATIONS / 2)) + ITERATIONS / 4 ))}"
C=4
K=6
WORK_DIR="$(mktemp -d /tmp/cold_crashloop.XXXXXX)"
CKPT_DIR="${WORK_DIR}/ckpt"

cleanup() { rm -rf "${WORK_DIR}"; }
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

for bin in cold_generate cold_train; do
  [[ -x "${BUILD_DIR}/tools/${bin}" ]] \
    || die "missing ${BUILD_DIR}/tools/${bin} (build the project first)"
done
(( CRASH_SWEEP >= 1 && CRASH_SWEEP < ITERATIONS )) \
  || die "crash sweep ${CRASH_SWEEP} outside training schedule"

echo "== generate dataset (crash at sweep ${CRASH_SWEEP}/${ITERATIONS}) =="
"${BUILD_DIR}/tools/cold_generate" "${WORK_DIR}/data" 120 "${C}" "${K}" 8 \
  || die "cold_generate"

echo "== clean reference run =="
"${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_clean.bin" "${C}" "${K}" "${ITERATIONS}" \
  || die "clean train"

echo "== kill -9 mid-training =="
set +e
COLD_FAULT_POINT="after_sweep:${CRASH_SWEEP}" \
  "${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_crashed.bin" "${C}" "${K}" "${ITERATIONS}" \
  --checkpoint-dir "${CKPT_DIR}" --checkpoint-every 1 --checkpoint-keep 3
CRASH_CODE=$?
set -e
[[ "${CRASH_CODE}" -eq 137 ]] \
  || die "expected SIGKILL exit 137, got ${CRASH_CODE}"
[[ ! -e "${WORK_DIR}/model_crashed.bin" ]] \
  || die "crashed run must not have written a model"
NEWEST="$(ls "${CKPT_DIR}"/ckpt-*.cold | sort | tail -n1)"
[[ -n "${NEWEST}" ]] || die "no checkpoint survived the crash"
echo "  killed at sweep ${CRASH_SWEEP}; newest checkpoint: ${NEWEST##*/}"

echo "== resume and compare =="
"${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_resumed.bin" "${C}" "${K}" "${ITERATIONS}" \
  --checkpoint-dir "${CKPT_DIR}" --checkpoint-every 1 --checkpoint-keep 3 \
  --resume >"${WORK_DIR}/resume.log" 2>&1 || die "resume train"
grep -q "resumed from" "${WORK_DIR}/resume.log" \
  || die "resume did not report a checkpoint"
cmp "${WORK_DIR}/model_clean.bin" "${WORK_DIR}/model_resumed.bin" \
  || die "resumed model differs from the clean run"
echo "  resumed model is byte-identical to the clean run"

echo "== corrupt newest checkpoint, resume must fall back =="
NEWEST="$(ls "${CKPT_DIR}"/ckpt-*.cold | sort | tail -n1)"
truncate -s -8 "${NEWEST}"
"${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_fallback.bin" "${C}" "${K}" "${ITERATIONS}" \
  --checkpoint-dir "${CKPT_DIR}" --checkpoint-every 1 --checkpoint-keep 3 \
  --resume >"${WORK_DIR}/fallback.log" 2>&1 || die "fallback resume train"
grep -q "skipping unusable checkpoint" "${WORK_DIR}/fallback.log" \
  || die "loader did not report the corrupt checkpoint"
grep -q "resumed from" "${WORK_DIR}/fallback.log" \
  || die "fallback resume did not report a checkpoint"
cmp "${WORK_DIR}/model_clean.bin" "${WORK_DIR}/model_fallback.bin" \
  || die "fallback-resumed model differs from the clean run"
echo "  corrupt checkpoint skipped; fallback model is byte-identical"

echo "PASS: crashloop train check complete"
