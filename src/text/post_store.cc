#include "text/post_store.h"

#include <algorithm>
#include <cassert>

namespace cold::text {

PostId PostStore::Add(UserId author, TimeSlice time,
                      std::span<const WordId> words) {
  assert(!finalized_);
  assert(author >= 0);
  assert(time >= 0);
  PostId id = static_cast<PostId>(time_.size());
  author_.push_back(author);
  time_.push_back(time);
  words_.insert(words_.end(), words.begin(), words.end());
  offsets_.push_back(words_.size());
  return id;
}

void PostStore::Finalize(int min_users, int min_time_slices) {
  assert(!finalized_);
  num_users_ = min_users;
  num_time_slices_ = min_time_slices;
  for (UserId a : author_) num_users_ = std::max(num_users_, a + 1);
  for (TimeSlice t : time_) num_time_slices_ = std::max(num_time_slices_, t + 1);

  // Counting sort of posts by author.
  user_offsets_.assign(static_cast<size_t>(num_users_) + 1, 0);
  for (UserId a : author_) user_offsets_[static_cast<size_t>(a) + 1]++;
  for (size_t i = 1; i < user_offsets_.size(); ++i) {
    user_offsets_[i] += user_offsets_[i - 1];
  }
  user_posts_.resize(author_.size());
  std::vector<size_t> cursor(user_offsets_.begin(), user_offsets_.end() - 1);
  for (PostId d = 0; d < num_posts(); ++d) {
    user_posts_[cursor[static_cast<size_t>(author_[static_cast<size_t>(d)])]++] =
        d;
  }
  // Precompute the distinct (word, count) pairs per post. The dedup below
  // must stay byte-for-byte the same as WordCounts() so both produce the
  // same first-occurrence order (FP summation order in the sampler depends
  // on it).
  pair_offsets_.assign(1, 0);
  pair_offsets_.reserve(static_cast<size_t>(num_posts()) + 1);
  word_pairs_.reserve(words_.size());
  std::vector<std::pair<WordId, int>> scratch;
  for (PostId d = 0; d < num_posts(); ++d) {
    WordCounts(d, &scratch);
    word_pairs_.insert(word_pairs_.end(), scratch.begin(), scratch.end());
    pair_offsets_.push_back(word_pairs_.size());
  }
  word_pairs_.shrink_to_fit();

  finalized_ = true;
}

std::vector<std::pair<WordId, int>> PostStore::WordCounts(PostId d) const {
  std::vector<std::pair<WordId, int>> counts;
  WordCounts(d, &counts);
  return counts;
}

void PostStore::WordCounts(PostId d,
                           std::vector<std::pair<WordId, int>>* out) const {
  out->clear();
  auto ws = words(d);
  out->reserve(ws.size());
  for (WordId w : ws) {
    bool found = false;
    for (auto& [cw, cnt] : *out) {
      if (cw == w) {
        ++cnt;
        found = true;
        break;
      }
    }
    if (!found) out->emplace_back(w, 1);
  }
}

}  // namespace cold::text
