// Enhanced User-Temporal model with Burst-weighted smoothing (EUTB; Yin et
// al., ICDE 2013) — the temporal baseline of §6.1. A post's topic is
// generated either by its author (stable interest) or by its time slice
// (temporal trend), selected by a Bernoulli switch; burst-weighted smoothing
// sharpens time-slice topic distributions around bursty slices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "text/post_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace cold::baselines {

struct EutbConfig {
  int num_topics = 20;
  double alpha = -1.0;  // <= 0 means 50/K
  double beta = 0.01;
  /// Initial probability that a post's topic comes from the user (the
  /// switch prior); re-estimated each sweep from switch counts.
  double user_source_prior = 0.5;
  /// Smoothing kernel half-width (slices) for burst-weighted smoothing.
  int smoothing_window = 2;
  int iterations = 100;
  uint64_t seed = 42;

  double ResolvedAlpha() const { return alpha > 0 ? alpha : 50.0 / num_topics; }
};

struct EutbEstimates {
  int U = 0, K = 0, V = 0, T = 0;
  /// theta_user[i*K + k]: user topic mixtures.
  std::vector<double> theta_user;
  /// theta_time[t*K + k]: burst-weight smoothed time-slice topic mixtures.
  std::vector<double> theta_time;
  /// phi[k*V + v].
  std::vector<double> phi;
  /// Learned switch probability (topic from user).
  double lambda_user = 0.5;
  /// Empirical post share per slice (burst prior).
  std::vector<double> slice_prior;

  double ThetaUser(int i, int k) const {
    return theta_user[static_cast<size_t>(i) * K + k];
  }
  double ThetaTime(int t, int k) const {
    return theta_time[static_cast<size_t>(t) * K + k];
  }
  double Phi(int k, int v) const {
    return phi[static_cast<size_t>(k) * V + v];
  }
};

class EutbModel {
 public:
  EutbModel(EutbConfig config, const text::PostStore& posts);

  cold::Status Train();

  const EutbEstimates& estimates() const { return estimates_; }

  /// \brief Per-slice scores for time-stamp prediction:
  /// score(t) = P(t) * sum_k [lambda P(k|u) + (1-lambda) P(k|t)] P(words|k).
  std::vector<double> TimestampScores(std::span<const text::WordId> words,
                                      text::UserId author) const;

  int PredictTimestamp(std::span<const text::WordId> words,
                       text::UserId author) const;

  /// \brief log p(w_d | author), marginalizing the time slice by its prior.
  double LogPostProbability(std::span<const text::WordId> words,
                            text::UserId author) const;

  double Perplexity(const text::PostStore& test_posts) const;

 private:
  void ApplyBurstWeightedSmoothing();

  EutbConfig config_;
  const text::PostStore& posts_;
  int vocab_ = 0;
  EutbEstimates estimates_;
};

}  // namespace cold::baselines
