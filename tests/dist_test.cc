// Tests for the multi-process distributed trainer (src/dist): wire codec,
// deterministic chunk ownership, the bit-identity guarantee across node
// counts (DESIGN.md §12), checkpoint byte-identity, the node-death /
// resume drill (fork + SIGKILL, then a negotiated checkpoint resume that
// must byte-match the uninterrupted run), heartbeat liveness detection,
// and the network fault injector's spec grammar.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/cold.h"
#include "data/synthetic.h"
#include "dist/delta_codec.h"
#include "dist/dist_trainer.h"
#include "dist/net_fault.h"
#include "dist/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injector.h"

namespace cold::dist {
namespace {

data::SyntheticConfig TestDataConfig() {
  data::SyntheticConfig config;
  config.num_users = 150;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_time_slices = 12;
  config.core_words_per_topic = 12;
  config.background_words = 60;
  config.posts_per_user = 10.0;
  config.words_per_post = 8.0;
  config.follows_per_user = 8;
  config.seed = 11;
  return config;
}

const data::SocialDataset& TestData() {
  static const data::SocialDataset* dataset = [] {
    data::SyntheticSocialGenerator gen(TestDataConfig());
    return new data::SocialDataset(std::move(gen.Generate()).ValueOrDie());
  }();
  return *dataset;
}

core::ColdConfig TestModelConfig(int iterations = 8) {
  core::ColdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.iterations = iterations;
  config.burn_in = iterations * 3 / 4;
  config.seed = 17;
  config.rho = 0.5;
  return config;
}

DistConfig TestDistConfig(int num_nodes, int rank, int iterations = 8) {
  DistConfig config;
  config.num_nodes = num_nodes;
  config.node_rank = rank;
  config.cold = TestModelConfig(iterations);
  config.engine.threads_per_node = 1;
  return config;
}

/// Byte-level equality over the complete model state.
void ExpectStatesEqual(const core::ColdState& a, const core::ColdState& b) {
  EXPECT_EQ(a.post_community, b.post_community);
  EXPECT_EQ(a.post_topic, b.post_topic);
  EXPECT_EQ(a.link_src_community, b.link_src_community);
  EXPECT_EQ(a.link_dst_community, b.link_dst_community);
  EXPECT_EQ(a.n_ic_flat(), b.n_ic_flat());
  EXPECT_EQ(a.n_i_flat(), b.n_i_flat());
  EXPECT_EQ(a.n_ck_flat(), b.n_ck_flat());
  EXPECT_EQ(a.n_c_flat(), b.n_c_flat());
  EXPECT_EQ(a.n_ckt_flat(), b.n_ckt_flat());
  EXPECT_EQ(a.n_kv_flat(), b.n_kv_flat());
  EXPECT_EQ(a.n_k_flat(), b.n_k_flat());
  EXPECT_EQ(a.n_cc_flat(), b.n_cc_flat());
}

// ------------------------------------------------------------- codec ----

core::SuperstepUpdate SampleUpdate() {
  core::SuperstepUpdate update;
  update.count_deltas = {{0, 1}, {7, -2}, {1u << 20, 3}};
  update.post_updates = {{4, 1, 2}, {9, 0, 5}};
  update.link_updates = {{2, 3, 0}};
  return update;
}

TEST(DeltaCodecTest, UpdateRoundTrip) {
  const core::SuperstepUpdate update = SampleUpdate();
  core::SuperstepUpdate decoded;
  ASSERT_TRUE(DecodeUpdate(EncodeUpdate(update), &decoded).ok());
  EXPECT_EQ(decoded.count_deltas, update.count_deltas);
  EXPECT_EQ(decoded.post_updates, update.post_updates);
  EXPECT_EQ(decoded.link_updates, update.link_updates);
}

TEST(DeltaCodecTest, HelloRoundTrip) {
  HelloPayload hello;
  hello.rank = 3;
  hello.num_nodes = 4;
  hello.seed = 0xdeadbeefcafe;
  hello.iterations = 150;
  hello.num_communities = 8;
  hello.num_topics = 12;
  hello.threads = 2;
  hello.data_fingerprint = 0x123456789abcdef0;
  hello.checkpoint_sweeps = {2, 4, 6};
  HelloPayload decoded;
  ASSERT_TRUE(DecodeHello(EncodeHello(hello), &decoded).ok());
  EXPECT_EQ(decoded.rank, hello.rank);
  EXPECT_EQ(decoded.seed, hello.seed);
  EXPECT_EQ(decoded.data_fingerprint, hello.data_fingerprint);
  EXPECT_EQ(decoded.checkpoint_sweeps, hello.checkpoint_sweeps);
}

TEST(DeltaCodecTest, TruncatedPayloadRejected) {
  std::string payload = EncodeUpdate(SampleUpdate());
  core::SuperstepUpdate decoded;
  for (size_t cut : {size_t{0}, size_t{4}, payload.size() - 1}) {
    EXPECT_FALSE(
        DecodeUpdate(std::string_view(payload).substr(0, cut), &decoded)
            .ok());
  }
  // Trailing garbage is rejected too (exhaustion check).
  EXPECT_FALSE(DecodeUpdate(payload + "x", &decoded).ok());
}

TEST(DeltaCodecTest, FrameRoundTripOverLoopback) {
  std::unique_ptr<Transport> a, b;
  ASSERT_TRUE(LoopbackPair(&a, &b).ok());
  const std::string payload = EncodeUpdate(SampleUpdate());
  ASSERT_TRUE(WriteFrame(a.get(), FrameType::kDelta, 2, 41, payload).ok());
  auto frame = ReadFrame(b.get());
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kDelta);
  EXPECT_EQ(frame->sender_rank, 2);
  EXPECT_EQ(frame->superstep, 41u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_GT(a->bytes_sent(), 0);
  EXPECT_EQ(a->bytes_sent(), b->bytes_received());
}

TEST(DeltaCodecTest, CorruptedPayloadFailsCrc) {
  std::unique_ptr<Transport> a, b;
  ASSERT_TRUE(LoopbackPair(&a, &b).ok());
  // Hand-build a frame whose CRC field does not match the payload.
  const std::string payload = "not the bytes the crc covers";
  auto append32 = [](std::string* out, uint32_t v) {
    out->append(reinterpret_cast<const char*>(&v), 4);
  };
  auto append64 = [](std::string* out, uint64_t v) {
    out->append(reinterpret_cast<const char*>(&v), 8);
  };
  std::string raw;
  append32(&raw, kWireMagic);
  append32(&raw, kWireVersion);
  append32(&raw, static_cast<uint32_t>(FrameType::kDelta));
  append32(&raw, 1);
  append64(&raw, 0);
  append64(&raw, payload.size());
  append32(&raw, 0xbadc0de);
  raw += payload;
  ASSERT_TRUE(a->Send(raw.data(), raw.size()).ok());
  auto frame = ReadFrame(b.get());
  EXPECT_FALSE(frame.ok());
}

TEST(DeltaCodecTest, BadMagicRejected) {
  std::unique_ptr<Transport> a, b;
  ASSERT_TRUE(LoopbackPair(&a, &b).ok());
  std::string raw(36, '\0');
  ASSERT_TRUE(a->Send(raw.data(), raw.size()).ok());
  EXPECT_FALSE(ReadFrame(b.get()).ok());
}

TEST(DeltaCodecTest, HeartbeatFrameRoundTrip) {
  std::unique_ptr<Transport> a, b;
  ASSERT_TRUE(LoopbackPair(&a, &b).ok());
  ASSERT_TRUE(WriteFrame(a.get(), FrameType::kHeartbeat, 3, 0, {}).ok());
  auto frame = ReadFrame(b.get());
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kHeartbeat);
  EXPECT_EQ(frame->sender_rank, 3);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(TransportTest, RecvOnClosedPeerFails) {
  std::unique_ptr<Transport> a, b;
  ASSERT_TRUE(LoopbackPair(&a, &b).ok());
  a.reset();  // closes the peer
  char byte = 0;
  EXPECT_FALSE(b->Recv(&byte, 1).ok());
}

// -------------------------------------------------------- net faults ----

TEST(NetFaultInjectorTest, ParsesValidSpecsAndDisarmsOnEmpty) {
  NetFaultInjector injector;
  EXPECT_TRUE(injector.Configure("drop:1:5").ok());
  EXPECT_TRUE(injector.armed());
  EXPECT_TRUE(injector.Configure("corrupt:0:3:42").ok());
  EXPECT_TRUE(injector.armed());
  EXPECT_TRUE(injector.Configure("").ok());
  EXPECT_FALSE(injector.armed());
}

TEST(NetFaultInjectorTest, RejectsMalformedSpecs) {
  NetFaultInjector injector;
  for (const char* spec :
       {"bogus:1:2", "drop:1", "drop:x:2", "drop:1:y", "drop:1:2:z",
        "drop:1:2:3:4", "drop:-1:2"}) {
    SCOPED_TRACE(spec);
    EXPECT_FALSE(injector.Configure(spec).ok());
    EXPECT_FALSE(injector.armed());
  }
}

TEST(NetFaultInjectorTest, SetNodeRankScopesTheFault) {
  NetFaultInjector injector;
  ASSERT_TRUE(injector.Configure("delay:2:5").ok());
  injector.SetNodeRank(1);  // some other node's fault: disarm
  EXPECT_FALSE(injector.armed());
  ASSERT_TRUE(injector.Configure("delay:2:5").ok());
  injector.SetNodeRank(2);  // ours: stay armed
  EXPECT_TRUE(injector.armed());
}

TEST(NetFaultInjectorTest, DropFiresExactlyOnceAtItsSuperstep) {
  NetFaultInjector injector;
  ASSERT_TRUE(injector.Configure("drop:0:3").ok());
  std::string wire(64, 'w');
  EXPECT_EQ(injector.OnDataFrame(2, &wire, 36), NetFaultMode::kNone);
  EXPECT_EQ(injector.OnDataFrame(3, &wire, 36), NetFaultMode::kDrop);
  // One fault spec models ONE failure event; the retry after recovery
  // must sail through.
  EXPECT_EQ(injector.OnDataFrame(3, &wire, 36), NetFaultMode::kNone);
}

TEST(NetFaultInjectorTest, CorruptFlipsExactlyOnePayloadByte) {
  NetFaultInjector injector;
  ASSERT_TRUE(injector.Configure("corrupt:0:1:5").ok());
  const size_t header_bytes = 36;
  std::string wire(header_bytes, 'h');
  wire += "payload-bytes";
  const std::string original = wire;
  EXPECT_EQ(injector.OnDataFrame(1, &wire, header_bytes),
            NetFaultMode::kCorrupt);
  ASSERT_EQ(wire.size(), original.size());
  size_t diffs = 0;
  size_t diff_at = 0;
  for (size_t i = 0; i < wire.size(); ++i) {
    if (wire[i] != original[i]) {
      ++diffs;
      diff_at = i;
    }
  }
  EXPECT_EQ(diffs, 1u);
  // The flip must land in the payload, never the header: a header flip
  // would fail magic/length validation instead of exercising the CRC.
  EXPECT_GE(diff_at, header_bytes);
}

// -------------------------------------------------------- partitioning --

TEST(DistPartitionTest, ChunkOwnersTileTheChunkSpace) {
  const auto& ds = TestData();
  core::ParallelColdTrainer trainer(TestModelConfig(), ds.posts,
                                    &ds.interactions);
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_GT(trainer.NumScatterChunks(), 0);
  for (int nodes : {1, 2, 4}) {
    std::vector<int32_t> owners = trainer.ComputeChunkOwners(nodes);
    ASSERT_EQ(static_cast<int64_t>(owners.size()),
              trainer.NumScatterChunks());
    for (int32_t owner : owners) {
      EXPECT_GE(owner, 0);
      EXPECT_LT(owner, nodes);
    }
  }
  // Single node owns everything.
  for (int32_t owner : trainer.ComputeChunkOwners(1)) EXPECT_EQ(owner, 0);
}

TEST(DistPartitionTest, OwnerTableIsReproducible) {
  const auto& ds = TestData();
  core::ParallelColdTrainer a(TestModelConfig(), ds.posts, &ds.interactions);
  core::ParallelColdTrainer b(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(b.Init().ok());
  EXPECT_EQ(a.ComputeChunkOwners(3), b.ComputeChunkOwners(3));
}

// -------------------------------------------------------- determinism ---

/// The tentpole guarantee: for a fixed seed, N distributed processes (here
/// in-process nodes over loopback) finish with byte-identical state to the
/// single-process parallel trainer, for every node count.
TEST(DistTrainerTest, BitIdenticalAcrossNodeCounts) {
  const auto& ds = TestData();
  core::ParallelColdTrainer reference(TestModelConfig(), ds.posts,
                                      &ds.interactions);
  ASSERT_TRUE(reference.Init().ok());
  ASSERT_TRUE(reference.Train().ok());
  const core::ColdState expected = reference.StateSnapshot();

  for (int num_nodes : {1, 2, 4}) {
    SCOPED_TRACE("num_nodes=" + std::to_string(num_nodes));
    std::vector<std::unique_ptr<DistTrainer>> owned;
    std::vector<DistTrainer*> nodes;
    for (int rank = 0; rank < num_nodes; ++rank) {
      owned.push_back(std::make_unique<DistTrainer>(
          TestDistConfig(num_nodes, rank), ds.posts, &ds.interactions));
      nodes.push_back(owned.back().get());
    }
    cold::Status st = DistTrainer::RunLocalCluster(nodes);
    ASSERT_TRUE(st.ok()) << st.ToString();
    // Every replica — not just rank 0 — must equal the reference.
    for (int rank = 0; rank < num_nodes; ++rank) {
      SCOPED_TRACE("rank=" + std::to_string(rank));
      ExpectStatesEqual(expected, nodes[rank]->StateSnapshot());
    }
    EXPECT_EQ(nodes[0]->stats().supersteps_run,
              TestModelConfig().iterations);
  }
}

// ----------------------------------------------------------- liveness ---

/// Heartbeats interleave arbitrarily with data frames at a 10ms cadence;
/// the read path must skip every one of them without desyncing, and the
/// beacons themselves must never perturb the model (bit-identity vs the
/// single-process reference is the proof).
TEST(DistLivenessTest, HeartbeatsFlowWithoutPerturbingTheModel) {
  const auto& ds = TestData();
  core::ParallelColdTrainer reference(TestModelConfig(), ds.posts,
                                      &ds.interactions);
  ASSERT_TRUE(reference.Init().ok());
  ASSERT_TRUE(reference.Train().ok());

  obs::Counter* heartbeats =
      obs::Registry::Global().GetCounter("cold/dist/heartbeats_total");
  const int64_t beats_before = heartbeats->Value();

  std::vector<std::unique_ptr<DistTrainer>> owned;
  std::vector<DistTrainer*> nodes;
  for (int rank = 0; rank < 2; ++rank) {
    DistConfig config = TestDistConfig(2, rank);
    config.heartbeat_interval_ms = 10;
    config.heartbeat_timeout_ms = 30000;
    owned.push_back(std::make_unique<DistTrainer>(config, ds.posts,
                                                  &ds.interactions));
    nodes.push_back(owned.back().get());
  }
  cold::Status st = DistTrainer::RunLocalCluster(nodes);
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (DistTrainer* node : nodes) {
    ExpectStatesEqual(reference.StateSnapshot(), node->StateSnapshot());
  }
  // Every node beats each peer once immediately at startup, so even an
  // instant run moves the counter.
  EXPECT_GT(heartbeats->Value(), beats_before);
}

/// A peer that connects and then never says anything must not wedge the
/// coordinator: the handshake read is bounded by the progress deadline.
TEST(DistLivenessTest, SilentPeerTripsTheHandshakeDeadline) {
  const auto& ds = TestData();
  std::unique_ptr<Transport> coord_end, silent_end;
  ASSERT_TRUE(LoopbackPair(&coord_end, &silent_end).ok());

  DistConfig config = TestDistConfig(2, 0);
  config.heartbeat_timeout_ms = 200;
  config.progress_timeout_ms = 500;
  DistTrainer coordinator(config, ds.posts, &ds.interactions);
  std::vector<std::unique_ptr<Transport>> peers;
  peers.push_back(std::move(coord_end));

  const auto start = std::chrono::steady_clock::now();
  cold::Status st = coordinator.Run(std::move(peers));
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_GE(elapsed_ms, 400);
  EXPECT_LT(elapsed_ms, 30000) << "read must not block indefinitely";
}

/// The acceptance drill's detection half, in-process-assertable form: a
/// forked worker completes the handshake, trains a couple of sweeps, then
/// a stall fault freezes every one of its sends — heartbeats included. A
/// TCP connection this quiet looks perfectly healthy to the kernel;
/// ONLY the coordinator's liveness deadline can call it dead, and it must
/// do so within heartbeat_timeout_ms (plus scheduling slack), bumping
/// cold/dist/frame_timeouts_total on the way out.
TEST(DistLivenessTest, HungPeerDetectedWithinTheLivenessDeadline) {
  const auto& ds = TestData();

  auto make_config = [&](int rank) {
    DistConfig config = TestDistConfig(2, rank);
    config.heartbeat_interval_ms = 50;
    config.heartbeat_timeout_ms = 500;
    config.progress_timeout_ms = 20000;
    return config;
  };

  std::unique_ptr<Transport> coord_end, worker_end;
  ASSERT_TRUE(LoopbackPair(&coord_end, &worker_end).ok());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    coord_end.reset();
    if (!NetFaultInjector::Global().Configure("stall:1:2").ok()) ::_exit(7);
    NetFaultInjector::Global().SetNodeRank(1);
    DistTrainer worker(make_config(1), ds.posts, &ds.interactions);
    std::vector<std::unique_ptr<Transport>> peers;
    peers.push_back(std::move(worker_end));
    // The stall fires at superstep 2 and never returns; reaching _exit
    // means the fault failed to arm.
    cold::Status ignored = worker.Run(std::move(peers));
    (void)ignored;
    ::_exit(8);
  }
  worker_end.reset();

  obs::Counter* frame_timeouts =
      obs::Registry::Global().GetCounter("cold/dist/frame_timeouts_total");
  const int64_t timeouts_before = frame_timeouts->Value();

  DistTrainer coordinator(make_config(0), ds.posts, &ds.interactions);
  std::vector<std::unique_ptr<Transport>> peers;
  peers.push_back(std::move(coord_end));
  const auto start = std::chrono::steady_clock::now();
  cold::Status st = coordinator.Run(std::move(peers));
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_NE(st.ToString().find("liveness deadline"), std::string::npos)
      << st.ToString();
  EXPECT_GT(frame_timeouts->Value(), timeouts_before);
  EXPECT_LT(elapsed_ms, 15000) << "hung peer took too long to detect";

  // The stalled child sleeps forever by design; it is the supervisor's
  // (here: the test's) job to put it down.
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
}

TEST(DistTrainerTest, RejectsLegacyCounterMode) {
  const auto& ds = TestData();
  DistConfig config = TestDistConfig(1, 0);
  config.engine.legacy_shared_counters = true;
  DistTrainer trainer(config, ds.posts, &ds.interactions);
  EXPECT_FALSE(trainer.Run({}).ok());
}

TEST(DistTrainerTest, RejectsBadPeerCount) {
  const auto& ds = TestData();
  DistTrainer trainer(TestDistConfig(3, 1), ds.posts, &ds.interactions);
  // Rank 1 of 3 needs exactly one transport.
  EXPECT_FALSE(trainer.Run({}).ok());
}

// -------------------------------------------------------- checkpoints ---

class DistCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cold_dist_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string NodeDir(const std::string& run, int rank) const {
    return (dir_ / run / ("node-" + std::to_string(rank))).string();
  }

  static std::string Slurp(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  std::filesystem::path dir_;
};

TEST_F(DistCheckpointTest, CheckpointsByteIdenticalAcrossNodeCounts) {
  const auto& ds = TestData();
  for (int num_nodes : {1, 2}) {
    std::string run_name = "n";
    run_name += std::to_string(num_nodes);
    std::vector<std::unique_ptr<DistTrainer>> owned;
    std::vector<DistTrainer*> nodes;
    for (int rank = 0; rank < num_nodes; ++rank) {
      DistConfig config = TestDistConfig(num_nodes, rank, /*iterations=*/6);
      config.checkpoint.dir = NodeDir(run_name, rank);
      config.checkpoint.every = 2;
      owned.push_back(std::make_unique<DistTrainer>(config, ds.posts,
                                                    &ds.interactions));
      nodes.push_back(owned.back().get());
    }
    cold::Status st = DistTrainer::RunLocalCluster(nodes);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  // Any rank's checkpoint IS the global state: rank 0 and rank 1 of the
  // 2-node run match each other and the 1-node run, byte for byte.
  const std::string name = core::CheckpointManager::FileName(6);
  auto ckpt = [&](const char* run, int rank) {
    return Slurp(std::filesystem::path(NodeDir(run, rank)) / name);
  };
  const std::string single = ckpt("n1", 0);
  ASSERT_FALSE(single.empty());
  EXPECT_EQ(single, ckpt("n2", 0));
  EXPECT_EQ(single, ckpt("n2", 1));
}

/// Node-death drill: rank 1 (a forked child process, talking to rank 0
/// over a pre-forked socketpair) is SIGKILLed by the fault injector after
/// sweep 4. Rank 0's run must fail (fail-stop), and a full restart with
/// resume=true must negotiate sweep 4 and finish byte-identical to an
/// uninterrupted single-process run.
TEST_F(DistCheckpointTest, KilledNodeResumesBitIdentical) {
  const auto& ds = TestData();
  constexpr int kIterations = 10;

  auto make_config = [&](int rank, bool resume) {
    DistConfig config = TestDistConfig(2, rank, kIterations);
    config.checkpoint.dir = NodeDir("run", rank);
    config.checkpoint.every = 2;
    config.resume = resume;
    return config;
  };

  auto run_child = [&](bool resume, bool arm_fault,
                       std::unique_ptr<Transport> transport) {
    // Child process: never returns. Exit codes diagnose failures.
    if (arm_fault &&
        !FaultInjector::Global().Configure("after_sweep:4").ok()) {
      ::_exit(7);
    }
    DistTrainer trainer(make_config(1, resume), ds.posts, &ds.interactions);
    std::vector<std::unique_ptr<Transport>> peers;
    peers.push_back(std::move(transport));
    ::_exit(trainer.Run(std::move(peers)).ok() ? 0 : 8);
  };

  // Leg 1: worker dies at sweep 4; the coordinator's run must fail.
  {
    std::unique_ptr<Transport> coord_end, worker_end;
    ASSERT_TRUE(LoopbackPair(&coord_end, &worker_end).ok());
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      coord_end.reset();
      run_child(/*resume=*/false, /*arm_fault=*/true,
                std::move(worker_end));
    }
    worker_end.reset();
    DistTrainer coordinator(make_config(0, false), ds.posts,
                            &ds.interactions);
    std::vector<std::unique_ptr<Transport>> peers;
    peers.push_back(std::move(coord_end));
    cold::Status st = coordinator.Run(std::move(peers));
    EXPECT_FALSE(st.ok()) << "coordinator must fail when a node dies";
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
  }

  // Leg 2: full restart with resume; must pick up the common sweep 4.
  // The successful resume is also the observability fixture: it must bump
  // cold/dist/restarts_total and record a dist/recovery trace span.
  obs::Counter* restarts =
      obs::Registry::Global().GetCounter("cold/dist/restarts_total");
  const int64_t restarts_before = restarts->Value();
  obs::TraceRing::Enable();
  int resumed_sweep = -1;
  core::ColdState resumed_state(0, 0, 0, 0, 0, 0, 0);
  {
    std::unique_ptr<Transport> coord_end, worker_end;
    ASSERT_TRUE(LoopbackPair(&coord_end, &worker_end).ok());
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      coord_end.reset();
      run_child(/*resume=*/true, /*arm_fault=*/false,
                std::move(worker_end));
    }
    worker_end.reset();
    DistTrainer coordinator(make_config(0, true), ds.posts,
                            &ds.interactions);
    std::vector<std::unique_ptr<Transport>> peers;
    peers.push_back(std::move(coord_end));
    cold::Status st = coordinator.Run(std::move(peers));
    ASSERT_TRUE(st.ok()) << st.ToString();
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), 0);
    resumed_sweep = coordinator.stats().resumed_sweep;
    resumed_state = coordinator.StateSnapshot();
  }
  EXPECT_EQ(resumed_sweep, 4);
  EXPECT_EQ(restarts->Value(), restarts_before + 1);
  bool saw_recovery_span = false;
  for (const obs::TraceEvent& event : obs::TraceRing::Events()) {
    if (event.name == "dist/recovery") saw_recovery_span = true;
  }
  obs::TraceRing::Disable();
  EXPECT_TRUE(saw_recovery_span)
      << "resume must record a dist/recovery trace span";

  // Reference: the uninterrupted run (computed last so no pool threads
  // exist in this process at fork time).
  core::ParallelColdTrainer reference(TestModelConfig(kIterations),
                                      ds.posts, &ds.interactions);
  ASSERT_TRUE(reference.Init().ok());
  ASSERT_TRUE(reference.Train().ok());
  ExpectStatesEqual(reference.StateSnapshot(), resumed_state);
}

}  // namespace
}  // namespace cold::dist
