# Empty dependencies file for ablation_topcomm.
# This may be replaced when dependencies are built.
