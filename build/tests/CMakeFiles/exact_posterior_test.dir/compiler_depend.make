# Empty compiler generated dependencies file for exact_posterior_test.
# This may be replaced when dependencies are built.
