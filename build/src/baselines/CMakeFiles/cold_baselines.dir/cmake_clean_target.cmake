file(REMOVE_RECURSE
  "libcold_baselines.a"
)
