file(REMOVE_RECURSE
  "../bench/ablation_engine"
  "../bench/ablation_engine.pdb"
  "CMakeFiles/ablation_engine.dir/ablation_engine.cc.o"
  "CMakeFiles/ablation_engine.dir/ablation_engine.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
