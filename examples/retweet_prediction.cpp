// Scenario: a feed-ranking service wants to estimate, for each follower of
// a publisher, the probability that a freshly published post will be
// retweeted — the §5.2 prediction task end to end, with a held-out
// evaluation against the ground-truth outcomes.
#include <algorithm>
#include <cstdio>

#include "core/cold.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "util/logging.h"

int main() {
  using namespace cold;
  Logger::SetLevel(LogLevel::kWarning);

  data::SyntheticConfig data_config;
  data_config.num_users = 600;
  data_config.num_communities = 8;
  data_config.num_topics = 12;
  auto dataset = std::move(
      data::SyntheticSocialGenerator(data_config).Generate()).ValueOrDie();

  // Hold out 20% of the retweet outcomes; train only on the rest (the
  // training interaction network is rebuilt from training tuples so no
  // outcome leaks into the graph).
  data::RetweetSplit split = data::SplitRetweets(dataset, 0.2, 1234, 0);
  std::printf("train tuples: %zu, test tuples: %zu, train links: %lld\n",
              split.train.size(), split.test.size(),
              static_cast<long long>(split.train_interactions.num_edges()));

  core::ColdConfig config;
  config.num_communities = 8;
  config.num_topics = 12;
  config.rho = 0.5;
  config.alpha = 0.5;
  config.kappa = 10.0;
  config.iterations = 150;
  config.burn_in = 110;
  core::ColdGibbsSampler sampler(config, dataset.posts,
                                 &split.train_interactions);
  if (!sampler.Init().ok() || !sampler.Train().ok()) return 1;
  core::ColdPredictor predictor(sampler.AveragedEstimates(), 5);

  // Rank the followers of one held-out post and show the hit list.
  const data::RetweetTuple& example = split.test.front();
  auto words = dataset.posts.words(example.post);
  struct Candidate {
    text::UserId user;
    double score;
    bool retweeted;
  };
  std::vector<Candidate> candidates;
  for (text::UserId u : example.retweeters) {
    candidates.push_back(
        {u, predictor.DiffusionProbability(example.author, u, words), true});
  }
  for (text::UserId u : example.ignorers) {
    candidates.push_back(
        {u, predictor.DiffusionProbability(example.author, u, words), false});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  std::printf("\npost by user %d — follower ranking (R = retweeted):\n",
              example.author);
  for (size_t i = 0; i < std::min<size_t>(candidates.size(), 10); ++i) {
    std::printf("  %2zu. user %-5d score %.5f %s\n", i + 1,
                candidates[i].user, candidates[i].score,
                candidates[i].retweeted ? "R" : "");
  }

  // Averaged per-tuple AUC over the held-out set (§6.3's metric).
  std::vector<eval::ScoredTuple> scored;
  for (const data::RetweetTuple& tuple : split.test) {
    eval::ScoredTuple st;
    auto tw = dataset.posts.words(tuple.post);
    for (text::UserId u : tuple.retweeters) {
      st.positive_scores.push_back(
          predictor.DiffusionProbability(tuple.author, u, tw));
    }
    for (text::UserId u : tuple.ignorers) {
      st.negative_scores.push_back(
          predictor.DiffusionProbability(tuple.author, u, tw));
    }
    scored.push_back(std::move(st));
  }
  std::printf("\nheld-out averaged AUC: %.4f (random = 0.5)\n",
              eval::AveragedTupleAuc(scored));
  return 0;
}
