#include "serve/model_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <span>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "apps/influence.h"
#include "core/model_io.h"
#include "obs/trace.h"
#include "serve/json.h"
#include "serve/snapshot_arena.h"
#include "util/logging.h"

namespace cold::serve {

namespace {

/// Batch size of the request currently handled on this thread, for the
/// slow-request log (set by HandleDiffusion, consumed by Handle; 0 for
/// endpoints with no batching notion).
thread_local int tls_request_batch_size = 0;

/// Per-endpoint request counter + latency histogram + error counter, all
/// label-addressed members of three metric families.
struct EndpointMetrics {
  obs::Counter* requests;
  obs::Histogram* latency;
  obs::Counter* errors;
};

const EndpointMetrics& MetricsFor(const char* endpoint) {
  static std::mutex mutex;
  static std::unordered_map<std::string, EndpointMetrics> by_endpoint;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = by_endpoint.find(endpoint);
  if (it == by_endpoint.end()) {
    auto& registry = obs::Registry::Global();
    obs::Labels labels{{"endpoint", endpoint}};
    it = by_endpoint
             .emplace(endpoint,
                      EndpointMetrics{
                          registry.GetCounter("cold/serve/requests", labels),
                          registry.GetHistogram("cold/serve/request_seconds",
                                                labels),
                          registry.GetCounter("cold/serve/errors", labels)})
             .first;
  }
  return it->second;
}

struct ServiceCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* batches;
  obs::Counter* batched_requests;
  obs::Histogram* batch_size;
  obs::Counter* reloads;
  obs::Counter* reload_failures;
  /// Duration of the atomic RouterState store — the serving stall a
  /// hot-reload actually imposes (snapshot load/validate runs beforehand,
  /// off to the side).
  obs::Histogram* reload_swap;
};

ServiceCounters& ServiceMetrics() {
  auto& registry = obs::Registry::Global();
  static ServiceCounters metrics{
      registry.GetCounter("cold/serve/posterior_cache_hits"),
      registry.GetCounter("cold/serve/posterior_cache_misses"),
      registry.GetCounter("cold/serve/batches"),
      registry.GetCounter("cold/serve/batched_requests"),
      registry.GetHistogram("cold/serve/batch_size",
                            {},
                            obs::HistogramOptions{1.0, 2.0, 12}),
      registry.GetCounter("cold/serve/reloads"),
      registry.GetCounter("cold/serve/reload_failures"),
      registry.GetHistogram("cold/serve/reload_swap_seconds")};
  return metrics;
}

std::string PosteriorKey(int64_t generation, text::UserId author,
                         const std::vector<text::WordId>& words) {
  std::string key;
  key.reserve(16 + words.size() * 6);
  key += std::to_string(generation);
  key += ':';
  key += std::to_string(author);
  for (text::WordId w : words) {
    key += ',';
    key += std::to_string(w);
  }
  return key;
}

std::vector<text::WordId> ToWordIds(const std::vector<int>& ids) {
  return std::vector<text::WordId>(ids.begin(), ids.end());
}

Json DoubleArray(const std::vector<double>& values) {
  Json arr = Json::MakeArray();
  for (double v : values) arr.Append(v);
  return arr;
}

HttpResponse JsonResponse(int code, const Json& payload) {
  HttpResponse r;
  r.status_code = code;
  r.body = payload.Dump();
  return r;
}

}  // namespace

ModelService::ModelService(ModelServiceOptions options)
    : options_(std::move(options)),
      num_replicas_(std::max(1, options_.num_replicas)) {
  const size_t shards = std::max<size_t>(1, options_.cache_shards);
  const size_t per_replica =
      options_.posterior_cache_capacity == 0
          ? 0
          : (options_.posterior_cache_capacity +
             static_cast<size_t>(num_replicas_) - 1) /
                static_cast<size_t>(num_replicas_);
  auto& registry = obs::Registry::Global();
  caches_.reserve(static_cast<size_t>(num_replicas_));
  shard_metrics_.reserve(static_cast<size_t>(num_replicas_));
  for (int r = 0; r < num_replicas_; ++r) {
    caches_.push_back(std::make_unique<ShardedLruCache<std::vector<double>>>(
        per_replica, shards));
    std::vector<ShardMetrics> per_shard;
    per_shard.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      obs::Labels labels{{"replica", std::to_string(r)},
                         {"shard", std::to_string(s)}};
      per_shard.push_back(
          ShardMetrics{registry.GetCounter("cold/serve/cache_hits", labels),
                       registry.GetCounter("cold/serve/cache_misses", labels),
                       registry.GetCounter("cold/serve/cache_evictions",
                                           labels)});
    }
    shard_metrics_.push_back(std::move(per_shard));
  }
  if (options_.batching_enabled) {
    batch_thread_ = std::thread([this] { BatchLoop(); });
  }
}

ModelService::~ModelService() {
  if (batch_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    batch_thread_.join();
  }
}

cold::Status ModelService::LoadFromFile(const std::string& path) {
  if (path.empty()) {
    return cold::Status::InvalidArgument("no model path configured");
  }
  // All snapshot parsing, validation and predictor construction (TopComm
  // precollection for COLDEST1) runs before the swap, so serving continues
  // at full speed during a reload.
  std::vector<std::shared_ptr<const core::ColdPredictor>> replicas;
  std::string format;
  if (core::IsArenaFile(path)) {
    auto mapped = ArenaSnapshot::Map(path);
    if (!mapped.ok()) {
      ServiceMetrics().reload_failures->Increment();
      return mapped.status();
    }
    std::shared_ptr<const ArenaSnapshot> snapshot =
        std::move(mapped).ValueOrDie();
    const size_t table_len = static_cast<size_t>(snapshot->view().U) *
                             static_cast<size_t>(snapshot->top_m());
    std::span<const int32_t> top_comm(snapshot->top_comm(), table_len);
    // Every replica is a zero-copy view pinning the same mmap; replica
    // count buys cache partitioning, not memory.
    replicas.reserve(static_cast<size_t>(num_replicas_));
    for (int r = 0; r < num_replicas_; ++r) {
      replicas.push_back(std::make_shared<const core::ColdPredictor>(
          snapshot->view(), snapshot, top_comm, snapshot->top_m()));
    }
    format = "coldarn1";
  } else {
    auto loaded = core::LoadEstimates(path);
    if (!loaded.ok()) {
      ServiceMetrics().reload_failures->Increment();
      return loaded.status();
    }
    auto predictor = std::make_shared<const core::ColdPredictor>(
        std::move(loaded).ValueOrDie(), options_.top_communities);
    replicas.assign(static_cast<size_t>(num_replicas_), predictor);
    format = "coldest1";
  }
  InstallReplicas(std::move(replicas), std::move(format));
  COLD_LOG(kInfo) << "cold_serve loaded snapshot " << path << " (generation "
                  << generation() << ", " << num_replicas_ << " replicas)";
  return cold::Status::OK();
}

void ModelService::SetPredictor(
    std::shared_ptr<const core::ColdPredictor> predictor) {
  std::vector<std::shared_ptr<const core::ColdPredictor>> replicas(
      static_cast<size_t>(num_replicas_), std::move(predictor));
  InstallReplicas(std::move(replicas), "in_memory");
}

void ModelService::InstallReplicas(
    std::vector<std::shared_ptr<const core::ColdPredictor>> replicas,
    std::string format) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  auto next = std::make_shared<RouterState>();
  next->generation = generation_.load(std::memory_order_relaxed) + 1;
  next->format = std::move(format);
  next->replicas = std::move(replicas);

  auto swap_start = std::chrono::steady_clock::now();
  router_.store(std::move(next), std::memory_order_release);
  ServiceMetrics().reload_swap->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    swap_start)
          .count());

  generation_.fetch_add(1, std::memory_order_relaxed);
  // Posteriors are keyed by generation, so stale entries can never be
  // served; clearing just returns their memory promptly.
  for (auto& cache : caches_) cache->Clear();
  ServiceMetrics().reloads->Increment();
}

std::shared_ptr<const core::ColdPredictor> ModelService::predictor() const {
  auto current = state();
  if (current == nullptr || current->replicas.empty()) return nullptr;
  return current->replicas.front();
}

int ModelService::ReplicaFor(const RouterState& state, text::UserId author) {
  if (state.replicas.size() <= 1) return 0;
  // Home community: the author's strongest membership. TopComm is the
  // same on every replica (they view one snapshot), so replica 0 answers.
  auto top = state.replicas.front()->TopComm(author);
  int home = top.empty() ? 0 : top.front();
  if (home < 0) home = 0;
  return home % static_cast<int>(state.replicas.size());
}

int ModelService::ReplicaForAuthor(text::UserId author) const {
  auto current = state();
  if (current == nullptr || current->replicas.empty()) return 0;
  return ReplicaFor(*current, author);
}

HttpResponse ModelService::Handle(const HttpRequest& request) {
  auto start = std::chrono::steady_clock::now();
  const char* endpoint = "unknown";
  tls_request_batch_size = 0;
  HttpResponse response = Route(request, &endpoint);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const EndpointMetrics& metrics = MetricsFor(endpoint);
  metrics.requests->Increment();
  metrics.latency->Observe(seconds);
  if (response.status_code >= 400) metrics.errors->Increment();
  if (options_.slow_request_ms > 0 &&
      seconds * 1000.0 >= static_cast<double>(options_.slow_request_ms)) {
    static obs::Counter* slow_requests =
        obs::Registry::Global().GetCounter("cold/serve/slow_requests");
    slow_requests->Increment();
    COLD_LOG(kWarning) << "slow request: " << request.method << " "
                       << request.path << " took "
                       << static_cast<int64_t>(seconds * 1000.0)
                       << "ms (status " << response.status_code
                       << ", batch_size " << tls_request_batch_size << ")";
  }
  return response;
}

HttpResponse ModelService::Route(const HttpRequest& request,
                                 const char** endpoint) {
  const std::string& path = request.path;
  const bool is_get = request.method == "GET";
  const bool is_post = request.method == "POST";

  if (path == "/healthz") {
    *endpoint = "healthz";
    if (!is_get) return HttpResponse::Error(405, "use GET");
    return HandleHealth();
  }
  if (path == "/metrics") {
    *endpoint = "metrics";
    if (!is_get) return HttpResponse::Error(405, "use GET");
    return HandleMetrics();
  }
  if (path == "/debug/vars") {
    *endpoint = "debug_vars";
    if (!is_get) return HttpResponse::Error(405, "use GET");
    return HandleDebugVars();
  }
  if (path == "/admin/reload") {
    *endpoint = "reload";
    if (!is_post) return HttpResponse::Error(405, "use POST");
    return HandleReload(request);
  }
  if (path == "/v1/influential_communities") {
    *endpoint = "influential_communities";
    if (!is_get) return HttpResponse::Error(405, "use GET");
    return HandleInfluentialCommunities(request);
  }
  if (path == "/v1/diffusion") {
    *endpoint = "diffusion";
    if (!is_post) return HttpResponse::Error(405, "use POST");
    return HandleDiffusion(request);
  }
  if (path == "/v1/topic_posterior") {
    *endpoint = "topic_posterior";
    if (!is_post) return HttpResponse::Error(405, "use POST");
    return HandleTopicPosterior(request);
  }
  if (path == "/v1/link") {
    *endpoint = "link";
    if (!is_post) return HttpResponse::Error(405, "use POST");
    return HandleLink(request);
  }
  if (path == "/v1/timestamp") {
    *endpoint = "timestamp";
    if (!is_post) return HttpResponse::Error(405, "use POST");
    return HandleTimestamp(request);
  }
  return HttpResponse::Error(404, "no such endpoint: " + path);
}

std::shared_ptr<const std::vector<double>> ModelService::PosteriorFor(
    const core::ColdPredictor& model, int replica, int64_t generation,
    text::UserId author, const std::vector<text::WordId>& words) {
  const std::string key = PosteriorKey(generation, author, words);
  auto& cache = *caches_[static_cast<size_t>(replica)];
  const ShardMetrics& shard =
      shard_metrics_[static_cast<size_t>(replica)][cache.ShardOf(key)];
  if (auto cached = cache.Get(key)) {
    ServiceMetrics().hits->Increment();
    shard.hits->Increment();
    return cached;
  }
  ServiceMetrics().misses->Increment();
  shard.misses->Increment();
  auto posterior = std::make_shared<const std::vector<double>>(
      model.TopicPosterior(words, author));
  if (cache.Put(key, posterior)) shard.evictions->Increment();
  return posterior;
}

std::future<double> ModelService::EnqueueDiffusion(
    std::shared_ptr<const core::ColdPredictor> model, int64_t generation,
    int replica, text::UserId publisher, text::UserId candidate,
    std::vector<text::WordId> words) {
  PendingDiffusion pending;
  pending.model = std::move(model);
  pending.generation = generation;
  pending.replica = replica;
  pending.publisher = publisher;
  pending.candidate = candidate;
  pending.words = std::move(words);
  std::future<double> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future;
}

void ModelService::BatchLoop() {
  std::vector<PendingDiffusion> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained.
      // Once work arrives, wait briefly for the batch to fill.
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(options_.batch_wait_us);
      while (queue_.size() < options_.max_batch && !stopping_) {
        if (queue_cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      size_t take = std::min(queue_.size(), options_.max_batch);
      batch.clear();
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ExecuteBatch(&batch);
  }
}

void ModelService::ExecuteBatch(std::vector<PendingDiffusion>* batch) {
  COLD_TRACE_SPAN("serve/batch");
  ServiceMetrics().batches->Increment();
  ServiceMetrics().batched_requests->Increment(
      static_cast<int64_t>(batch->size()));
  ServiceMetrics().batch_size->Observe(static_cast<double>(batch->size()));
  // Posteriors computed once per (author, words) within this drain; the
  // local map also covers the cache-disabled configuration.
  std::unordered_map<std::string, std::shared_ptr<const std::vector<double>>>
      drain_posteriors;
  for (PendingDiffusion& item : *batch) {
    const std::string key =
        PosteriorKey(item.generation, item.publisher, item.words);
    auto it = drain_posteriors.find(key);
    if (it == drain_posteriors.end()) {
      it = drain_posteriors
               .emplace(key,
                        PosteriorFor(*item.model, item.replica,
                                     item.generation, item.publisher,
                                     item.words))
               .first;
    }
    item.promise.set_value(item.model->DiffusionFromPosterior(
        item.publisher, item.candidate, *it->second));
  }
}

HttpResponse ModelService::HandleDiffusion(const HttpRequest& request) {
  auto current = state();
  if (current == nullptr || current->replicas.empty()) {
    return HttpResponse::Error(503, "no model loaded");
  }
  const int64_t gen = current->generation;
  const auto& est = current->replicas.front()->estimates();

  // Sequential request phases as trace spans: emplace ends the previous
  // phase before the next begins, so the timeline shows parse -> predict
  // -> serialize back to back on this thread.
  std::optional<obs::TraceSpan> phase;
  phase.emplace("serve/parse");

  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) return HttpResponse::FromStatus(parsed.status());
  const Json& body = *parsed;

  auto publisher = body.GetInt("publisher", 0, est.U - 1);
  if (!publisher.ok()) return HttpResponse::FromStatus(publisher.status());
  auto word_ids = body.GetIntArray("words", est.V);
  if (!word_ids.ok()) return HttpResponse::FromStatus(word_ids.status());
  std::vector<text::WordId> words = ToWordIds(*word_ids);
  auto author = static_cast<text::UserId>(*publisher);

  // All candidates share the author, whose home community picks the
  // replica (and therefore the posterior cache) for the whole request.
  const int replica = ReplicaFor(*current, author);
  const auto& model = current->replicas[static_cast<size_t>(replica)];

  // Either one "candidate" or a fan-out "candidates" array.
  std::vector<text::UserId> candidates;
  bool single = body.Find("candidates") == nullptr;
  if (single) {
    auto candidate = body.GetInt("candidate", 0, est.U - 1);
    if (!candidate.ok()) return HttpResponse::FromStatus(candidate.status());
    candidates.push_back(static_cast<text::UserId>(*candidate));
  } else {
    auto ids = body.GetIntArray("candidates", est.U);
    if (!ids.ok()) return HttpResponse::FromStatus(ids.status());
    if (ids->empty()) {
      return HttpResponse::Error(400, "'candidates' must not be empty");
    }
    candidates.assign(ids->begin(), ids->end());
  }
  tls_request_batch_size = static_cast<int>(candidates.size());

  phase.emplace("serve/predict");
  std::vector<double> probabilities;
  probabilities.reserve(candidates.size());
  // Single-candidate requests — the serving hot path — always compute
  // inline: one cache lookup plus one dot product beats a queue hop, and
  // the epoll core runs this handler on a reactor thread that must not
  // park on a future. Fan-outs still amortize Eq. (5) through the batch
  // thread when batching is on.
  if (options_.batching_enabled && candidates.size() > 1) {
    std::vector<std::future<double>> futures;
    futures.reserve(candidates.size());
    for (text::UserId candidate : candidates) {
      futures.push_back(
          EnqueueDiffusion(model, gen, replica, author, candidate, words));
    }
    for (auto& f : futures) probabilities.push_back(f.get());
  } else {
    auto posterior = PosteriorFor(*model, replica, gen, author, words);
    for (text::UserId candidate : candidates) {
      probabilities.push_back(
          model->DiffusionFromPosterior(author, candidate, *posterior));
    }
  }
  for (double p : probabilities) {
    if (std::isnan(p)) {
      return HttpResponse::Error(500, "prediction failed");
    }
  }

  phase.emplace("serve/serialize");
  Json payload = Json::MakeObject();
  if (single) {
    payload.Set("probability", probabilities.front());
  } else {
    payload.Set("probabilities", DoubleArray(probabilities));
  }
  return JsonResponse(200, payload);
}

HttpResponse ModelService::HandleTopicPosterior(const HttpRequest& request) {
  auto current = state();
  if (current == nullptr || current->replicas.empty()) {
    return HttpResponse::Error(503, "no model loaded");
  }
  const auto& est = current->replicas.front()->estimates();

  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) return HttpResponse::FromStatus(parsed.status());
  auto author = parsed->GetInt("author", 0, est.U - 1);
  if (!author.ok()) return HttpResponse::FromStatus(author.status());
  auto word_ids = parsed->GetIntArray("words", est.V);
  if (!word_ids.ok()) return HttpResponse::FromStatus(word_ids.status());

  auto author_id = static_cast<text::UserId>(*author);
  const int replica = ReplicaFor(*current, author_id);
  auto posterior =
      PosteriorFor(*current->replicas[static_cast<size_t>(replica)], replica,
                   current->generation, author_id, ToWordIds(*word_ids));
  Json payload = Json::MakeObject();
  payload.Set("posterior", DoubleArray(*posterior));
  return JsonResponse(200, payload);
}

HttpResponse ModelService::HandleLink(const HttpRequest& request) {
  auto current = state();
  if (current == nullptr || current->replicas.empty()) {
    return HttpResponse::Error(503, "no model loaded");
  }
  const auto& est = current->replicas.front()->estimates();

  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) return HttpResponse::FromStatus(parsed.status());
  auto source = parsed->GetInt("source", 0, est.U - 1);
  if (!source.ok()) return HttpResponse::FromStatus(source.status());
  auto target = parsed->GetInt("target", 0, est.U - 1);
  if (!target.ok()) return HttpResponse::FromStatus(target.status());

  auto source_id = static_cast<text::UserId>(*source);
  const auto& model =
      current->replicas[static_cast<size_t>(ReplicaFor(*current, source_id))];
  Json payload = Json::MakeObject();
  payload.Set("probability",
              model->LinkProbability(source_id,
                                     static_cast<text::UserId>(*target)));
  return JsonResponse(200, payload);
}

HttpResponse ModelService::HandleTimestamp(const HttpRequest& request) {
  auto current = state();
  if (current == nullptr || current->replicas.empty()) {
    return HttpResponse::Error(503, "no model loaded");
  }
  const auto& est = current->replicas.front()->estimates();

  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) return HttpResponse::FromStatus(parsed.status());
  auto author = parsed->GetInt("author", 0, est.U - 1);
  if (!author.ok()) return HttpResponse::FromStatus(author.status());
  auto word_ids = parsed->GetIntArray("words", est.V);
  if (!word_ids.ok()) return HttpResponse::FromStatus(word_ids.status());

  auto author_id = static_cast<text::UserId>(*author);
  const auto& model =
      current->replicas[static_cast<size_t>(ReplicaFor(*current, author_id))];
  std::vector<text::WordId> words = ToWordIds(*word_ids);
  std::vector<double> scores = model->TimestampScores(words, author_id);
  if (scores.empty()) return HttpResponse::Error(500, "prediction failed");
  int predicted = static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());

  Json payload = Json::MakeObject();
  payload.Set("predicted", predicted);
  payload.Set("scores", DoubleArray(scores));
  return JsonResponse(200, payload);
}

HttpResponse ModelService::HandleInfluentialCommunities(
    const HttpRequest& request) {
  auto model = predictor();
  if (model == nullptr) return HttpResponse::Error(503, "no model loaded");
  const auto& est = model->estimates();

  int topic = request.QueryInt("topic", 0);
  if (topic < 0 || topic >= est.K) {
    return HttpResponse::Error(
        422, "topic must be in [0, " + std::to_string(est.K) + ")");
  }
  int n = request.QueryInt("n", 5);
  if (n < 1) n = 1;
  if (n > est.C) n = est.C;
  int trials = request.QueryInt("trials", options_.influence_trials);
  if (trials < 1) trials = 1;
  if (trials > 100000) trials = 100000;

  // Deterministic seed: identical queries return identical rankings.
  auto ranked = apps::RankCommunitiesByInfluence(est, topic, trials,
                                                 /*seed=*/0x5EEDC01Dull);
  Json communities = Json::MakeArray();
  for (int i = 0; i < n && i < static_cast<int>(ranked.size()); ++i) {
    Json entry = Json::MakeObject();
    entry.Set("community", ranked[static_cast<size_t>(i)].community);
    entry.Set("influence_degree",
              ranked[static_cast<size_t>(i)].influence_degree);
    entry.Set("topic_interest",
              ranked[static_cast<size_t>(i)].topic_interest);
    communities.Append(std::move(entry));
  }
  Json payload = Json::MakeObject();
  payload.Set("topic", topic);
  payload.Set("trials", trials);
  payload.Set("communities", std::move(communities));
  return JsonResponse(200, payload);
}

HttpResponse ModelService::HandleHealth() {
  auto current = state();
  Json payload = Json::MakeObject();
  if (current == nullptr || current->replicas.empty()) {
    payload.Set("status", "no_model");
    return JsonResponse(503, payload);
  }
  const auto& est = current->replicas.front()->estimates();
  payload.Set("status", "ok");
  payload.Set("generation", generation());
  payload.Set("replicas", static_cast<int64_t>(current->replicas.size()));
  payload.Set("snapshot_format", current->format);
  Json dims = Json::MakeObject();
  dims.Set("users", est.U);
  dims.Set("communities", est.C);
  dims.Set("topics", est.K);
  dims.Set("time_slices", est.T);
  dims.Set("vocabulary", est.V);
  payload.Set("model", std::move(dims));
  return JsonResponse(200, payload);
}

HttpResponse ModelService::HandleMetrics() {
  std::ostringstream os;
  obs::Registry::Global().DumpPrometheusText(os);
  return HttpResponse::Text(200, os.str(),
                            "text/plain; version=0.0.4; charset=utf-8");
}

HttpResponse ModelService::HandleDebugVars() {
  // The full telemetry snapshot as JSON (histograms include estimated
  // p50/p90/p99), expvar-style, plus a couple of service-level fields.
  auto current = state();
  std::ostringstream vars;
  obs::Registry::Global().DumpJson(vars);
  std::ostringstream os;
  os << "{\"generation\":" << generation()
     << ",\"model_loaded\":" << (current != nullptr ? "true" : "false")
     << ",\"replicas\":" << num_replicas_ << ",\"snapshot_format\":\""
     << (current != nullptr ? current->format : "none")
     << "\",\"telemetry\":" << vars.str() << "}";
  HttpResponse r;
  r.status_code = 200;
  r.body = os.str();
  return r;
}

HttpResponse ModelService::HandleReload(const HttpRequest& request) {
  std::string path = options_.model_path;
  if (!request.body.empty()) {
    auto parsed = Json::Parse(request.body);
    if (!parsed.ok()) return HttpResponse::FromStatus(parsed.status());
    if (const Json* override_path = parsed->Find("path")) {
      if (!override_path->is_string()) {
        return HttpResponse::Error(400, "'path' must be a string");
      }
      path = override_path->as_string();
    }
  }
  if (cold::Status st = LoadFromFile(path); !st.ok()) {
    return HttpResponse::FromStatus(st);
  }
  return HandleHealth();
}

}  // namespace cold::serve
