// Parallel COLD inference on the GAS engine (§4.3, Fig 4, Alg 2).
//
// Graph abstraction (exactly the paper's): a bipartite graph connecting each
// user with each time slice — the edge (i, t) carries the posts user i wrote
// at time t together with their community/topic indicators — plus user-user
// edges carrying the link community indicators (s, s').
//
// Counter placement follows Alg 2: per-user membership counts n_ic and
// per-time counts n_ckt are vertex-owned and rebuilt in the gather/apply
// phases each superstep; the low-dimensional global counters (n_ck, n_kv,
// n_k, n_cc) are shared aggregates broadcast at superstep boundaries (the
// engine accounts that traffic).
//
// Scatter draws new assignments with Eqs. (1)-(3). In the default
// delta-table mode the canonical counters stay frozen for the whole phase:
// each worker reads them contention-free, records its +/- updates in a
// private delta buffer, and the buffers are merged at the superstep
// boundary — deterministic for a fixed seed regardless of worker count, and
// free of the fetch_add hot spot. Derived log/lgamma caches are rebuilt
// once per superstep from the stable counts (DESIGN.md §10). The legacy
// shared-atomic mode (live counts, per-token logs) remains selectable via
// EngineOptions::legacy_shared_counters for A/B benchmarking.
#pragma once

#include <functional>
#include <memory>

#include "core/cold_config.h"
#include "core/cold_estimates.h"
#include "core/parallel_state.h"
#include "engine/gas_engine.h"
#include "graph/digraph.h"
#include "text/post_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace cold::core {

/// \brief Vertex payload: user vertices come first (id = user), then time
/// vertices (id = slice).
struct ColdVertex {
  bool is_user = true;
  int32_t index = 0;
};

/// \brief Edge payload: a user-time edge owns the posts of (user, t); a
/// user-user edge owns one interaction link.
struct ColdEdge {
  enum class Type : uint8_t { kUserTime, kUserUser };
  Type type = Type::kUserTime;
  std::vector<text::PostId> posts;  // kUserTime
  graph::EdgeId link = -1;          // kUserUser
};

class ColdVertexProgram;  // defined in parallel_sampler.cc

/// \brief Parallel trainer: builds the Fig-4 graph, runs `iterations`
/// supersteps, and exposes estimates plus engine statistics for the
/// scalability experiments (Figs 13-14).
class ParallelColdTrainer {
 public:
  ParallelColdTrainer(ColdConfig config, const text::PostStore& posts,
                      const graph::Digraph* links,
                      engine::EngineOptions engine_options = {});
  ~ParallelColdTrainer();

  /// \brief Builds the graph abstraction and the random initial assignment.
  cold::Status Init();

  /// \brief Runs the remaining supersteps (config.iterations minus
  /// supersteps_run()), so a trainer restored via RestoreState() picks up
  /// where the checkpoint left off.
  cold::Status Train();

  /// \brief Serializes the complete trainer state — shared counters,
  /// assignments, superstep index, and every worker's RNG stream — for the
  /// checkpoint layer (checkpoint.h). Defined in checkpoint.cc.
  cold::Status SerializeState(std::string* out) const;

  /// \brief Restores state captured by SerializeState(). Requires the same
  /// dataset, seed, schedule and worker count (the v1 payload serializes
  /// per-worker RNG streams; scatter draws are keyed by superstep and
  /// chunk, so resumed runs are bit-identical at any worker count that
  /// matches the checkpoint); validated before anything takes effect.
  /// Defined in checkpoint.cc.
  cold::Status RestoreState(const std::string& payload);

  /// 1-based count of completed supersteps.
  int supersteps_run() const { return supersteps_run_; }

  /// \brief Observer invoked by Train() after every superstep with the
  /// 1-based superstep number (the per-sweep telemetry snapshot hook).
  void SetSuperstepCallback(std::function<void(int)> callback) {
    superstep_callback_ = std::move(callback);
  }

  /// \brief Runs a single superstep (one full Gibbs sweep).
  void RunSuperstep();

  /// \brief Appendix-A estimates from the current counters.
  ColdEstimates Estimates() const;

  /// \brief Snapshot of the shared state as a plain ColdState.
  ColdState StateSnapshot() const;

  const engine::EngineStats& engine_stats() const;

  /// \brief Projected wall-clock on the simulated cluster (see
  /// engine::GasEngine::SimulatedWallSeconds).
  double SimulatedWallSeconds(const engine::ClusterModel& model = {}) const;

  double lambda0() const { return lambda0_; }

 private:
  using Graph = engine::PropertyGraph<ColdVertex, ColdEdge>;

  // Engine access for checkpoint.cc (which cannot instantiate the engine
  // template against the incomplete ColdVertexProgram); defined in
  // parallel_sampler.cc.
  std::vector<cold::RngState> EngineSamplerStates() const;
  cold::Status EngineRestoreSamplerStates(
      const std::vector<cold::RngState>& states);
  void EngineSetSuperstepIndex(int64_t index);

  ColdConfig config_;
  const text::PostStore& posts_;
  const graph::Digraph* links_;
  bool use_network_;
  double lambda0_ = 0.1;

  std::unique_ptr<ParallelColdState> state_;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<ColdVertexProgram> program_;
  std::unique_ptr<engine::GasEngine<ColdVertex, ColdEdge, ColdVertexProgram>>
      engine_;
  engine::EngineOptions engine_options_;
  int supersteps_run_ = 0;
  bool initialized_ = false;
  std::function<void(int)> superstep_callback_;
};

}  // namespace cold::core
