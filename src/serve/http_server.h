// Blocking-socket HTTP/1.1 server for the prediction service: an accept
// loop feeding per-connection tasks into the existing cold::ThreadPool,
// keep-alive support, per-endpoint telemetry hooks, and graceful shutdown
// that drains in-flight requests before returning.
//
// Concurrency model: one worker owns a connection for its lifetime
// (requests on one connection are sequential by HTTP semantics), so the
// pool size bounds concurrent connections, not concurrent requests. Idle
// keep-alive connections are bounded by a socket read timeout, so a silent
// client cannot pin a worker forever.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "serve/http.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cold::serve {

/// \brief Server knobs; defaults favor tests (ephemeral port, loopback).
struct HttpServerOptions {
  /// 0 picks an ephemeral port; read it back via port() after Start().
  int port = 0;
  /// Worker threads == max concurrent connections.
  size_t num_workers = 8;
  /// Seconds a keep-alive connection may sit idle before being closed.
  int idle_timeout_seconds = 5;
  /// Seconds a response write may block on a slow-reading client before
  /// the connection is dropped (SO_SNDTIMEO; counted by
  /// cold/serve/write_timeouts). 0 reuses idle_timeout_seconds.
  int write_timeout_seconds = 0;
  /// Seconds Stop() waits for in-flight requests before force-closing.
  int drain_timeout_seconds = 10;
  /// Load shedding: when more than this many connections are already being
  /// serviced, new ones are answered straight from the accept loop with
  /// 503 + Retry-After instead of queueing behind busy workers (0 = no
  /// shedding). Counted by cold/serve/shed_total.
  size_t max_inflight_requests = 0;
  HttpLimits limits;
};

/// \brief The request handler: pure function of the parsed request.
/// Invoked concurrently from worker threads; must be thread-safe.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer(HttpServerOptions options, HttpHandler handler);
  /// Stops the server if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// \brief Binds 127.0.0.1:port, starts the accept thread and workers.
  cold::Status Start();

  /// \brief Graceful shutdown: stops accepting, waits up to
  /// drain_timeout_seconds for open connections to finish their in-flight
  /// request, then force-closes stragglers and joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Connections currently being serviced (observability/tests).
  int active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  const HttpServerOptions options_;
  const HttpHandler handler_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_connections_{0};

  std::thread accept_thread_;
  std::unique_ptr<cold::ThreadPool> pool_;

  // Open connection fds, for force-close at drain timeout.
  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  std::unordered_set<int> open_fds_;
};

}  // namespace cold::serve
