// Scenario: embedding the serving layer in your own process. A small COLD
// model is trained on synthetic data, saved as a COLDEST1 snapshot, and
// served over loopback HTTP by ModelService + HttpServer; the bundled
// HttpClient then plays the role of a downstream consumer — scoring
// diffusion candidates (Eq. 7), inspecting a topic posterior (Eq. 5),
// ranking influential communities (§6.6), and finally triggering an
// /admin/reload hot swap while the server stays up.
#include <cstdio>
#include <filesystem>

#include "core/cold.h"
#include "core/model_io.h"
#include "data/synthetic.h"
#include "serve/http.h"
#include "serve/http_server.h"
#include "serve/model_service.h"
#include "util/logging.h"

namespace {

void CheckOk(const cold::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

cold::core::ColdEstimates TrainSmallModel() {
  cold::data::SyntheticConfig config;
  config.num_users = 60;
  config.num_communities = 3;
  config.num_topics = 4;
  config.num_time_slices = 6;
  config.core_words_per_topic = 6;
  config.background_words = 20;
  config.posts_per_user = 4.0;
  config.words_per_post = 6.0;
  config.follows_per_user = 4;
  auto dataset =
      std::move(cold::data::SyntheticSocialGenerator(config).Generate())
          .ValueOrDie();

  cold::core::ColdConfig model;
  model.num_communities = 3;
  model.num_topics = 4;
  model.iterations = 30;
  model.burn_in = 15;
  cold::core::ColdGibbsSampler sampler(model, dataset.posts,
                                       &dataset.interactions);
  CheckOk(sampler.Init(), "Init");
  CheckOk(sampler.Train(), "Train");
  return sampler.AveragedEstimates();
}

void Show(const char* label,
          const cold::Result<cold::serve::HttpClient::Response>& response) {
  if (!response.ok()) {
    std::printf("%-28s transport error: %s\n", label,
                response.status().ToString().c_str());
    return;
  }
  std::printf("%-28s HTTP %d  %s\n", label, response->status_code,
              response->body.c_str());
}

}  // namespace

int main() {
  using namespace cold;
  Logger::SetLevel(LogLevel::kWarning);

  // --- Offline half: train and snapshot a model (normally cold_train). ---
  const std::string snapshot =
      (std::filesystem::temp_directory_path() / "serving_client_model.bin")
          .string();
  core::ColdEstimates estimates = TrainSmallModel();
  CheckOk(core::SaveEstimates(estimates, snapshot), "SaveEstimates");
  std::printf("snapshot: %s (U=%d C=%d K=%d)\n\n", snapshot.c_str(),
              estimates.U, estimates.C, estimates.K);

  // --- Online half: load the snapshot and serve it over loopback. -------
  serve::ModelServiceOptions service_options;
  service_options.model_path = snapshot;
  serve::ModelService service(service_options);
  CheckOk(service.LoadFromFile(snapshot), "LoadFromFile");

  serve::HttpServerOptions server_options;
  server_options.port = 0;  // Ephemeral; real deployments pass --port.
  serve::HttpServer server(server_options, [&service](
                                               const serve::HttpRequest& r) {
    return service.Handle(r);
  });
  CheckOk(server.Start(), "server Start");
  std::printf("serving on 127.0.0.1:%d\n\n", server.port());

  // --- A downstream consumer. -------------------------------------------
  serve::HttpClient client;
  CheckOk(client.Connect(server.port()), "client Connect");

  Show("GET /healthz", client.Get("/healthz"));
  Show("POST /v1/diffusion",
       client.Post("/v1/diffusion",
                   R"({"publisher": 0, "candidate": 7, "words": [1, 2, 3]})"));
  Show("POST /v1/diffusion (fan)",
       client.Post("/v1/diffusion", R"({"publisher": 0, "candidates":)"
                                    R"( [5, 6, 7], "words": [1, 2, 3]})"));
  Show("POST /v1/topic_posterior",
       client.Post("/v1/topic_posterior",
                   R"({"author": 0, "words": [1, 2, 3]})"));
  Show("POST /v1/link",
       client.Post("/v1/link", R"({"source": 0, "target": 7})"));
  Show("POST /v1/timestamp",
       client.Post("/v1/timestamp",
                   R"({"author": 0, "words": [1, 2, 3]})"));
  Show("GET /v1/influential_...",
       client.Get("/v1/influential_communities?topic=0&n=3&trials=16"));

  // --- Hot reload: swap the snapshot without dropping the server. -------
  Show("POST /admin/reload", client.Post("/admin/reload", ""));
  Show("GET /healthz", client.Get("/healthz"));

  // Validation errors come back as structured 4xx, never a dropped
  // connection:
  Show("bad author (422)",
       client.Post("/v1/topic_posterior",
                   R"({"author": 999999, "words": [1]})"));

  client.Close();
  server.Stop();
  std::filesystem::remove(snapshot);
  std::printf("\ndone\n");
  return 0;
}
