// Gather-Apply-Scatter execution engine: a from-scratch shared-memory
// re-implementation of distributed GraphLab's synchronous engine (Low et
// al., PVLDB 2012), the substrate the COLD paper runs its parallel Gibbs
// sampler on (§4.3, Alg 2).
//
// A superstep runs three phases:
//   gather  — per vertex, a commutative-associative reduction over incident
//             edges (parallel over vertices);
//   apply   — per vertex, folds the gathered value into vertex state;
//   scatter — per edge, may mutate edge state (this is where COLD samples
//             new latent assignments); parallel over fixed-size edge chunks
//             pulled from an atomic cursor (dynamic scheduling kills the
//             work-skew tail), each chunk drawing from its own RNG stream
//             keyed by (superstep, chunk) so results are bit-identical
//             across repeats AND worker counts.
//
// Programs may additionally provide two optional phase hooks, detected by
// duck typing:
//   void PreScatter(cold::ThreadPool*);   // after apply, before scatter —
//                                         // e.g. rebuild derived caches
//   void PostScatter(cold::ThreadPool*);  // after scatter, before comm
//                                         // accounting — e.g. merge
//                                         // per-worker delta tables
//
// Cluster simulation: vertices are placed on `options.num_nodes` simulated
// machines by a Partitioner. Phases execute on `num_nodes * threads_per_node`
// real threads (capped at the host's hardware concurrency), and the engine
// accounts the bytes that *would* cross the network: gather/scatter traffic
// for cut edges plus the periodic broadcast of global aggregator state.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "engine/partitioner.h"
#include "engine/property_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace cold::engine {

namespace internal {

/// Registry handles for the engine's exported metrics (cached once; the
/// per-superstep updates are a handful of relaxed atomics). The same
/// quantities stay available through EngineStats for callers that hold the
/// engine; the registry view is for telemetry snapshots.
struct EngineMetrics {
  obs::Gauge* gather_seconds;
  obs::Gauge* apply_seconds;
  obs::Gauge* scatter_seconds;
  obs::Gauge* merge_seconds;
  obs::Counter* comm_bytes;
  obs::Counter* supersteps;
  obs::Gauge* cut_edges;
  obs::Gauge* work_skew;
};

inline EngineMetrics& GetEngineMetrics() {
  auto& registry = obs::Registry::Global();
  static EngineMetrics metrics{
      registry.GetGauge("cold/engine/gather_seconds"),
      registry.GetGauge("cold/engine/apply_seconds"),
      registry.GetGauge("cold/engine/scatter_seconds"),
      registry.GetGauge("cold/engine/merge_seconds"),
      registry.GetCounter("cold/engine/comm_bytes"),
      registry.GetCounter("cold/engine/supersteps"),
      registry.GetGauge("cold/engine/cut_edges"),
      registry.GetGauge("cold/engine/work_skew")};
  return metrics;
}

/// Detects the optional PreScatter/PostScatter program hooks.
template <typename Program>
concept HasPreScatter = requires(Program p, cold::ThreadPool* pool) {
  p.PreScatter(pool);
};
template <typename Program>
concept HasPostScatter = requires(Program p, cold::ThreadPool* pool) {
  p.PostScatter(pool);
};

}  // namespace internal

/// Edges per scatter chunk. Small enough for dynamic scheduling to even
/// out skew, large enough that the per-chunk RNG construction is noise.
/// Public (namespace scope) so the distributed layer can compute chunk
/// ownership that matches the engine's scatter chunking exactly.
inline constexpr int64_t kScatterChunkEdges = 256;
/// Chunk RNG streams start far above the legacy per-worker streams
/// (1..kMaxWorkers) and the trainer's init stream, so no sequence is
/// reused across purposes.
inline constexpr uint64_t kChunkStreamBase = uint64_t{1} << 32;

/// \brief Which incident edges the gather phase visits.
enum class GatherEdges { kNone, kIn, kOut, kAll };

/// \brief Execution mode: synchronous supersteps (gather/apply/scatter with
/// barriers) or asynchronous sweeps (scatter-only, dynamic scheduling).
enum class ExecutionMode { kSync, kAsync };

/// \brief Engine configuration.
struct EngineOptions {
  /// Simulated cluster size (Fig 13b sweeps this).
  int num_nodes = 1;
  /// Synchronous GAS supersteps (default) or asynchronous sweeps.
  ExecutionMode execution = ExecutionMode::kSync;
  /// Worker threads per simulated node; total threads = num_nodes *
  /// threads_per_node, capped at hardware concurrency unless
  /// `oversubscribe` is set.
  int threads_per_node = 1;
  /// Base seed for the per-chunk scatter RNG streams.
  uint64_t seed = 42;
  /// Bytes accounted per cut-edge message (gather result or scattered
  /// assignment); a knob for the communication model, not correctness.
  int64_t bytes_per_edge_message = 16;
  /// Vertex placement strategy. Greedy (degree-aware LDG) is the default —
  /// it cuts fewer edges than modulo on clustered graphs; kModulo remains
  /// for A/B comparisons.
  PartitionerKind partitioner = PartitionerKind::kGreedy;
  /// Run num_nodes * threads_per_node real threads even beyond the host's
  /// hardware concurrency. Results are thread-count-invariant, so this is
  /// for exercising multi-worker code paths (tests, TSan) on small hosts,
  /// not for throughput.
  bool oversubscribe = false;
  /// Opt back into the pre-delta-table execution: scatter updates shared
  /// atomic counters live instead of buffering per-worker deltas. Consumed
  /// by the COLD vertex program (the engine just carries it); kept for
  /// benchmarking the contention the delta tables remove.
  bool legacy_shared_counters = false;
};

/// \brief Engine execution statistics, reset by each Run call.
struct EngineStats {
  int supersteps = 0;
  double gather_seconds = 0.0;
  double apply_seconds = 0.0;
  double scatter_seconds = 0.0;
  /// Time inside the program's PostScatter hook (delta-table merge); a
  /// subset of scatter_seconds, reported separately for the scaling bench.
  double merge_seconds = 0.0;
  /// Simulated network traffic: cut-edge messages + aggregator broadcasts.
  int64_t comm_bytes = 0;
  /// Cut edges in the current partitioning (constant per partitioning).
  int64_t cut_edges = 0;
  /// Work units (program-defined, e.g. tokens sampled) per simulated node.
  std::vector<int64_t> node_work_units;

  double total_seconds() const {
    return gather_seconds + apply_seconds + scatter_seconds;
  }
};

/// \brief Cost model for the simulated cluster, used to project the
/// measured single-host execution onto an N-node deployment (this repo runs
/// on one core; see DESIGN.md §1).
struct ClusterModel {
  /// Per-node NIC bandwidth.
  double bandwidth_bytes_per_sec = 1.0e9;
  /// Per-superstep barrier/aggregation latency factor (multiplied by
  /// ceil(log2(nodes))).
  double sync_latency_sec = 0.002;
};

/// \brief Worker-local context handed to scatter: a deterministic RNG stream
/// plus the worker index for per-worker scratch state.
struct WorkerContext {
  cold::RandomSampler* sampler;
  size_t worker_index;
};

/// \brief Synchronous GAS engine over a PropertyGraph.
///
/// `Program` is a duck-typed vertex program providing:
///
///   using GatherType = ...;                 // commutative monoid
///   static constexpr GatherEdges kGatherEdges = ...;
///   GatherType GatherInit() const;
///   void Gather(const Graph&, VertexId, EdgeId, GatherType*) const;
///   void Apply(Graph*, VertexId, const GatherType&);
///   void Scatter(Graph*, EdgeId, WorkerContext*) ;
///   void PostSuperstep(Graph*, int superstep);   // global sync point
///
/// Scatter runs in parallel over edges; programs are responsible for making
/// concurrent edge updates safe (COLD uses atomic counters + periodic global
/// sync, the same approximate-Gibbs semantics as the paper).
template <typename VData, typename EData, typename Program>
class GasEngine {
 public:
  using Graph = PropertyGraph<VData, EData>;

  GasEngine(Graph* graph, Program* program, EngineOptions options = {})
      : graph_(graph),
        program_(program),
        options_(options),
        partitioner_(graph->num_vertices(), options.num_nodes),
        pool_(ComputeThreads(options)) {
    InitSamplers();
    if (options_.partitioner == PartitionerKind::kGreedy &&
        options_.num_nodes > 1 && graph_->num_vertices() > 0) {
      // Edges execute on their source's node, so a vertex's work is the
      // work of its out-edges.
      std::vector<int64_t> vertex_work(
          static_cast<size_t>(graph_->num_vertices()), 0);
      for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
        vertex_work[static_cast<size_t>(graph_->src(e))] +=
            program_->EdgeWorkUnits(e);
      }
      partitioner_.SetAssignment(
          GreedyAssignment(*graph_, options_.num_nodes, vertex_work));
    }
    ComputePartitionStats();
  }

  const EngineStats& stats() const { return stats_; }
  const Partitioner& partitioner() const { return partitioner_; }
  size_t num_threads() const { return pool_.num_threads(); }

  /// \brief Snapshots every worker's RNG stream (checkpoint capture).
  std::vector<cold::RngState> SamplerStates() const {
    std::vector<cold::RngState> out;
    out.reserve(samplers_.size());
    for (const auto& s : samplers_) out.push_back(s.SaveState());
    return out;
  }

  /// \brief Restores worker RNG streams captured by SamplerStates(). The
  /// worker count must match the checkpointed one — resuming with a
  /// different thread layout would silently change the draw sequences.
  cold::Status RestoreSamplerStates(
      const std::vector<cold::RngState>& states) {
    if (states.size() != samplers_.size()) {
      return cold::Status::InvalidArgument(
          "checkpoint has " + std::to_string(states.size()) +
          " worker RNG streams but the engine runs " +
          std::to_string(samplers_.size()) +
          " workers; resume with the same --parallel configuration");
    }
    for (size_t w = 0; w < states.size(); ++w) {
      samplers_[w].RestoreState(states[w]);
    }
    return cold::Status::OK();
  }

  /// Replaces the vertex placement (e.g. for locality experiments).
  void SetPartition(std::vector<int> assignment) {
    partitioner_.SetAssignment(std::move(assignment));
    ComputePartitionStats();
  }

  /// \brief Sets the superstep index that keys the per-chunk scatter RNG
  /// streams. The engine advances it after every scatter; a checkpoint
  /// restore must reinstall the saved value so resumed supersteps draw from
  /// the streams an uninterrupted run would have used.
  void set_superstep_index(int64_t index) { superstep_index_ = index; }
  int64_t superstep_index() const { return superstep_index_; }

  /// Scatter chunk count for the current graph (the unit of distributed
  /// work ownership).
  int64_t num_scatter_chunks() const {
    return (graph_->num_edges() + kScatterChunkEdges - 1) / kScatterChunkEdges;
  }

  /// \brief Restricts scatter to chunks with mask[chunk] != 0 (nullptr
  /// runs them all). The distributed trainer hands each node the chunks it
  /// owns; masked-out chunks are skipped whole, so the surviving chunks
  /// draw from exactly the RNG streams — keyed by (superstep, chunk id) —
  /// that a full single-process run would use. The mask must outlive the
  /// supersteps run under it and cover num_scatter_chunks() entries.
  void set_scatter_chunk_mask(const std::vector<uint8_t>* mask) {
    scatter_chunk_mask_ = mask;
  }

  /// \brief Projects the measured execution time onto the simulated
  /// `options.num_nodes`-machine cluster: the busiest node's share of the
  /// compute plus the communication modeled by `model`. With one node this
  /// returns measured compute time exactly.
  double SimulatedWallSeconds(const ClusterModel& model = {}) const {
    int64_t total = 0, max_node = 0;
    for (int64_t w : stats_.node_work_units) {
      total += w;
      max_node = std::max(max_node, w);
    }
    double work_fraction =
        total > 0 ? static_cast<double>(max_node) / static_cast<double>(total)
                  : 1.0;
    double compute = stats_.total_seconds() * work_fraction;
    if (options_.num_nodes <= 1) return compute;
    double comm = static_cast<double>(stats_.comm_bytes) /
                  static_cast<double>(options_.num_nodes) /
                  model.bandwidth_bytes_per_sec;
    int log_nodes = 0;
    for (int n = options_.num_nodes - 1; n > 0; n >>= 1) ++log_nodes;
    double sync =
        stats_.supersteps * model.sync_latency_sec * log_nodes;
    return compute + comm + sync;
  }

  /// \brief Runs `supersteps` full iterations in the configured execution
  /// mode, accumulating stats.
  void Run(int supersteps) {
    for (int s = 0; s < supersteps; ++s) {
      if (options_.execution == ExecutionMode::kAsync) {
        RunAsyncSweep();
      } else {
        RunSuperstep();
      }
    }
  }

  /// \brief Runs one ASYNCHRONOUS sweep (GraphLab's second execution mode):
  /// no gather/apply barrier — workers pull edge chunks from a shared
  /// cursor and scatter against continuously-updated state. The program
  /// must maintain its own counters inside Scatter (the COLD program does,
  /// via atomics); gather-rebuilt state is never refreshed here.
  ///
  /// Communication model: cut edges still ship their assignment updates,
  /// but there is no per-superstep aggregator broadcast — global counters
  /// are exchanged as fine-grained deltas folded into the edge messages.
  void RunAsyncSweep() {
    COLD_TRACE_SPAN("engine/async_sweep");
    auto& metrics = internal::GetEngineMetrics();
    RunScatterPhase(metrics);
    int64_t bytes = 2 * stats_.cut_edges * options_.bytes_per_edge_message;
    stats_.comm_bytes += bytes;
    metrics.comm_bytes->Increment(bytes);
    program_->PostSuperstep(graph_, stats_.supersteps);
    stats_.supersteps++;
    metrics.supersteps->Increment();
  }

  /// \brief Runs one gather/apply/scatter superstep.
  void RunSuperstep() {
    COLD_TRACE_SPAN("engine/superstep");
    auto& metrics = internal::GetEngineMetrics();

    // Gather + Apply. Each vertex's reduction is independent, so one
    // parallel sweep covers both phases (GraphLab fuses them the same way
    // for synchronous execution).
    double ga = 0.0;
    if constexpr (Program::kGatherEdges != GatherEdges::kNone) {
      cold::ScopedTimer timer(ga);
      size_t nv = static_cast<size_t>(graph_->num_vertices());
      pool_.ParallelFor(nv, [this](size_t begin, size_t end, size_t) {
        for (size_t v = begin; v < end; ++v) {
          auto vid = static_cast<VertexId>(v);
          auto acc = program_->GatherInit();
          if constexpr (Program::kGatherEdges == GatherEdges::kIn ||
                        Program::kGatherEdges == GatherEdges::kAll) {
            for (EdgeId e : graph_->in_edges(vid)) {
              program_->Gather(*graph_, vid, e, &acc);
            }
          }
          if constexpr (Program::kGatherEdges == GatherEdges::kOut ||
                        Program::kGatherEdges == GatherEdges::kAll) {
            for (EdgeId e : graph_->out_edges(vid)) {
              program_->Gather(*graph_, vid, e, &acc);
            }
          }
          program_->Apply(graph_, vid, acc);
        }
      });
    }
    stats_.gather_seconds += ga * 0.5;
    stats_.apply_seconds += ga * 0.5;
    metrics.gather_seconds->Add(ga * 0.5);
    metrics.apply_seconds->Add(ga * 0.5);

    // Scatter.
    RunScatterPhase(metrics);

    // Simulated network: every cut edge ships its gather contribution and
    // its scattered assignment; global aggregator state is broadcast to all
    // nodes at the sync point.
    int64_t bytes = 2 * stats_.cut_edges * options_.bytes_per_edge_message +
                    static_cast<int64_t>(options_.num_nodes - 1) *
                        program_->GlobalStateBytes();
    stats_.comm_bytes += bytes;
    metrics.comm_bytes->Increment(bytes);

    program_->PostSuperstep(graph_, stats_.supersteps);
    stats_.supersteps++;
    metrics.supersteps->Increment();
  }

 private:
  static size_t ComputeThreads(const EngineOptions& options) {
    size_t want = static_cast<size_t>(options.num_nodes) *
                  static_cast<size_t>(options.threads_per_node);
    if (options.oversubscribe) return std::max<size_t>(1, want);
    size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
    return std::max<size_t>(1, std::min(want, hw));
  }

  /// \brief The scatter phase shared by sync supersteps and async sweeps:
  /// optional PreScatter hook, chunked dynamic execution over edges, and
  /// the optional PostScatter hook (timed separately as merge_seconds).
  ///
  /// Determinism: chunk boundaries depend only on the edge count and each
  /// chunk owns RNG stream (superstep * num_chunks + chunk), so the drawn
  /// assignments are identical no matter which worker ends up executing a
  /// chunk — repeat runs and different thread counts produce bit-identical
  /// state (provided the program's own updates commute, as the delta-table
  /// program's do).
  void RunScatterPhase(internal::EngineMetrics& metrics) {
    double scatter_s = 0.0;
    double merge_s = 0.0;
    {
      COLD_TRACE_SPAN("engine/scatter");
      cold::ScopedTimer timer(scatter_s);
      if constexpr (internal::HasPreScatter<Program>) {
        program_->PreScatter(&pool_);
      }
      const int64_t ne = graph_->num_edges();
      const int64_t num_chunks = num_scatter_chunks();
      const uint64_t stream_base =
          kChunkStreamBase + static_cast<uint64_t>(superstep_index_) *
                                 static_cast<uint64_t>(num_chunks);
      std::atomic<int64_t> cursor{0};
      size_t workers = pool_.num_threads();
      // One long-running task per worker, each pulling chunks dynamically.
      pool_.ParallelFor(
          workers, [this, ne, num_chunks, stream_base, &cursor](
                       size_t, size_t, size_t worker) {
            // One span per worker per superstep: the trace timeline shows
            // each pool thread's share of the scatter phase.
            COLD_TRACE_SPAN("engine/scatter_worker");
            while (true) {
              int64_t chunk = cursor.fetch_add(1, std::memory_order_relaxed);
              if (chunk >= num_chunks) break;
              if (scatter_chunk_mask_ != nullptr &&
                  (*scatter_chunk_mask_)[static_cast<size_t>(chunk)] == 0) {
                continue;
              }
              cold::RandomSampler sampler(
                  options_.seed, stream_base + static_cast<uint64_t>(chunk));
              WorkerContext ctx{&sampler, worker};
              int64_t stop = std::min(ne, (chunk + 1) * kScatterChunkEdges);
              for (int64_t e = chunk * kScatterChunkEdges; e < stop; ++e) {
                program_->Scatter(graph_, static_cast<EdgeId>(e), &ctx);
              }
            }
          });
      if constexpr (internal::HasPostScatter<Program>) {
        cold::ScopedTimer merge_timer(merge_s);
        program_->PostScatter(&pool_);
      }
    }
    superstep_index_++;
    stats_.scatter_seconds += scatter_s;
    stats_.merge_seconds += merge_s;
    metrics.scatter_seconds->Add(scatter_s);
    metrics.merge_seconds->Add(merge_s);
  }

  void InitSamplers() {
    samplers_.clear();
    for (size_t w = 0; w < pool_.num_threads(); ++w) {
      samplers_.emplace_back(options_.seed, /*stream=*/w + 1);
    }
  }

  void ComputePartitionStats() {
    stats_.cut_edges = 0;
    stats_.node_work_units.assign(
        static_cast<size_t>(options_.num_nodes), 0);
    for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
      if (partitioner_.IsCut(*graph_, e)) stats_.cut_edges++;
      // Edges execute on their source's node (GraphLab assigns each edge to
      // one owning replica).
      int node = partitioner_.NodeOf(graph_->src(e));
      stats_.node_work_units[static_cast<size_t>(node)] +=
          program_->EdgeWorkUnits(e);
    }
    auto& metrics = internal::GetEngineMetrics();
    metrics.cut_edges->Set(static_cast<double>(stats_.cut_edges));
    int64_t total = 0, max_node = 0;
    for (int64_t w : stats_.node_work_units) {
      total += w;
      max_node = std::max(max_node, w);
    }
    // Load-balance skew: busiest node's work over the per-node mean
    // (1.0 = perfectly balanced).
    double mean = total > 0 ? static_cast<double>(total) / options_.num_nodes
                            : 1.0;
    metrics.work_skew->Set(
        total > 0 ? static_cast<double>(max_node) / mean : 1.0);
  }

  Graph* graph_;
  Program* program_;
  EngineOptions options_;
  Partitioner partitioner_;
  cold::ThreadPool pool_;
  // Legacy per-worker streams. Scatter now draws from per-chunk streams;
  // these remain only because the v1 checkpoint payload serializes them
  // (SamplerStates/RestoreSamplerStates keep old checkpoints readable).
  std::vector<cold::RandomSampler> samplers_;
  EngineStats stats_;
  int64_t superstep_index_ = 0;
  const std::vector<uint8_t>* scatter_chunk_mask_ = nullptr;
};

}  // namespace cold::engine
