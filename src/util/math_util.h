// Small numerical helpers shared by the samplers and evaluators.
#pragma once

#include <cmath>
#include <span>
#include <vector>

namespace cold {

/// \brief log(sum_i exp(x_i)), numerically stable. Returns -inf for empty
/// input.
double LogSumExp(std::span<const double> x);

/// \brief Normalizes `x` in place to sum to 1. If the sum is <= 0 the vector
/// is set to uniform. Returns the pre-normalization sum.
double NormalizeInPlace(std::span<double> x);

/// \brief Mean of `x`; 0 for empty input.
double Mean(std::span<const double> x);

/// \brief Population variance of `x`; 0 for fewer than 2 elements.
double Variance(std::span<const double> x);

/// \brief Median of `x` (copies and partially sorts); 0 for empty input.
double Median(std::span<const double> x);

/// \brief Shannon entropy (nats) of a probability vector. Zero entries are
/// skipped.
double Entropy(std::span<const double> p);

/// \brief KL divergence KL(p || q) in nats. Entries where p == 0 contribute
/// zero; q entries are floored at `eps` to keep the result finite.
double KlDivergence(std::span<const double> p, std::span<const double> q,
                    double eps = 1e-12);

/// \brief L1 distance between two equal-length vectors.
double L1Distance(std::span<const double> a, std::span<const double> b);

/// \brief Cosine similarity of two equal-length vectors; 0 if either has
/// zero norm.
double CosineSimilarity(std::span<const double> a, std::span<const double> b);

/// \brief Indices of the `k` largest values of `x` (ties broken by lower
/// index), in descending value order. k is clamped to x.size().
std::vector<int> TopKIndices(std::span<const double> x, int k);

/// \brief log of the Beta function, log B(a, b).
inline double LogBeta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

/// \brief Digamma function (Euler's psi), via asymptotic expansion with
/// recurrence shift; accurate to ~1e-12 for x > 0.
double Digamma(double x);

}  // namespace cold
