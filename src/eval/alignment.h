// Latent-space alignment metrics: estimated communities/topics have
// arbitrary label order, so recovery quality is measured after matching —
// normalized mutual information for hard labelings and greedy best-match
// cosine for distribution dictionaries. Only usable on synthetic data
// (needs planted truth); the paper could not run these.
#pragma once

#include <span>
#include <vector>

namespace cold::eval {

/// \brief Normalized mutual information between two hard labelings of the
/// same items: I(A;B) / sqrt(H(A) H(B)), in [0, 1]; 1 iff the labelings
/// are identical up to a permutation. Returns 0 for degenerate inputs
/// (empty, or either side constant).
double NormalizedMutualInformation(std::span<const int> a,
                                   std::span<const int> b);

/// \brief Greedy one-to-one matching between two distribution dictionaries
/// (e.g. planted and learned topic-word rows): repeatedly pairs the
/// highest-cosine unmatched rows. Returns the mean cosine over matched
/// pairs (rows beyond min(|A|, |B|) are ignored).
double GreedyMatchedCosine(const std::vector<std::vector<double>>& truth,
                           const std::vector<std::vector<double>>& learned);

/// \brief Per-row best-match assignment used by GreedyMatchedCosine;
/// returns, for each truth row, the learned row index it was matched to
/// (-1 if unmatched).
std::vector<int> GreedyMatching(const std::vector<std::vector<double>>& truth,
                                const std::vector<std::vector<double>>& learned);

}  // namespace cold::eval
