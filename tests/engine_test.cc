#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "engine/gas_engine.h"
#include "engine/partitioner.h"
#include "engine/property_graph.h"

namespace cold::engine {
namespace {

// ---------------------------------------------------------- PropertyGraph --

TEST(PropertyGraphTest, BuildAndAccess) {
  PropertyGraph<int, double> g;
  VertexId a = g.AddVertex(10);
  VertexId b = g.AddVertex(20);
  VertexId c = g.AddVertex(30);
  EdgeId e0 = g.AddEdge(a, b, 1.5);
  EdgeId e1 = g.AddEdge(b, c, 2.5);
  g.AddEdge(a, c, 3.5);
  g.Finalize();

  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.vertex_data(b), 20);
  EXPECT_DOUBLE_EQ(g.edge_data(e1), 2.5);
  EXPECT_EQ(g.src(e0), a);
  EXPECT_EQ(g.dst(e0), b);

  EXPECT_EQ(g.out_edges(a).size(), 2u);
  EXPECT_EQ(g.in_edges(c).size(), 2u);
  EXPECT_EQ(g.out_edges(c).size(), 0u);
}

TEST(PropertyGraphTest, PayloadsAreMutable) {
  PropertyGraph<int, int> g;
  VertexId v = g.AddVertex(1);
  EdgeId e = g.AddEdge(v, g.AddVertex(2), 7);
  g.Finalize();
  g.vertex_data(v) = 42;
  g.edge_data(e) = 43;
  EXPECT_EQ(g.vertex_data(v), 42);
  EXPECT_EQ(g.edge_data(e), 43);
}

// ------------------------------------------------------------ Partitioner --

TEST(PartitionerTest, ModuloAssignmentBalanced) {
  Partitioner p(10, 4);
  auto loads = p.NodeLoads();
  ASSERT_EQ(loads.size(), 4u);
  for (int64_t load : loads) {
    EXPECT_GE(load, 2);
    EXPECT_LE(load, 3);
  }
}

TEST(PartitionerTest, CustomAssignment) {
  Partitioner p(3, 2);
  p.SetAssignment({1, 1, 0});
  EXPECT_EQ(p.NodeOf(0), 1);
  EXPECT_EQ(p.NodeOf(2), 0);
}

TEST(PartitionerTest, CutDetection) {
  PropertyGraph<int, int> g;
  g.AddVertex(0);
  g.AddVertex(0);
  EdgeId e = g.AddEdge(0, 1, 0);
  g.Finalize();
  Partitioner same(2, 1);
  EXPECT_FALSE(same.IsCut(g, e));
  Partitioner split(2, 2);
  EXPECT_TRUE(split.IsCut(g, e));
}

// -------------------------------------------------------------- GasEngine --

// Toy program: gather sums in-degree, apply writes it to the vertex, scatter
// increments a per-edge counter.
struct DegreeProgram {
  using GatherType = int;
  static constexpr GatherEdges kGatherEdges = GatherEdges::kIn;

  GatherType GatherInit() const { return 0; }
  void Gather(const PropertyGraph<int, int>&, VertexId, EdgeId,
              GatherType* acc) const {
    ++*acc;
  }
  void Apply(PropertyGraph<int, int>* g, VertexId v, const GatherType& acc) {
    g->vertex_data(v) = acc;
  }
  void Scatter(PropertyGraph<int, int>* g, EdgeId e, WorkerContext*) {
    g->edge_data(e)++;
  }
  void PostSuperstep(PropertyGraph<int, int>*, int superstep) {
    last_superstep = superstep;
  }
  int64_t GlobalStateBytes() const { return 64; }
  int64_t EdgeWorkUnits(EdgeId) const { return 1; }

  int last_superstep = -1;
};

PropertyGraph<int, int> MakeChain(int n) {
  PropertyGraph<int, int> g;
  for (int i = 0; i < n; ++i) g.AddVertex(0);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1, 0);
  g.Finalize();
  return g;
}

TEST(GasEngineTest, GatherApplyComputesInDegrees) {
  auto g = MakeChain(5);
  DegreeProgram program;
  GasEngine<int, int, DegreeProgram> engine(&g, &program);
  engine.RunSuperstep();
  EXPECT_EQ(g.vertex_data(0), 0);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(g.vertex_data(i), 1);
}

TEST(GasEngineTest, ScatterTouchesEveryEdgeOncePerSuperstep) {
  auto g = MakeChain(6);
  DegreeProgram program;
  GasEngine<int, int, DegreeProgram> engine(&g, &program);
  engine.Run(3);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.edge_data(e), 3);
  }
  EXPECT_EQ(engine.stats().supersteps, 3);
  EXPECT_EQ(program.last_superstep, 2);
}

TEST(GasEngineTest, SingleNodeHasNoCutEdges) {
  auto g = MakeChain(6);
  DegreeProgram program;
  GasEngine<int, int, DegreeProgram> engine(&g, &program, {});
  EXPECT_EQ(engine.stats().cut_edges, 0);
  engine.RunSuperstep();
  // Single node: no cut traffic and no broadcast.
  EXPECT_EQ(engine.stats().comm_bytes, 0);
}

TEST(GasEngineTest, MultiNodeAccountsCommunication) {
  auto g = MakeChain(8);
  DegreeProgram program;
  EngineOptions options;
  options.num_nodes = 4;
  GasEngine<int, int, DegreeProgram> engine(&g, &program, options);
  // Chain with modulo placement: every edge crosses nodes.
  EXPECT_GT(engine.stats().cut_edges, 0);
  engine.RunSuperstep();
  EXPECT_GT(engine.stats().comm_bytes, 0);
}

TEST(GasEngineTest, NodeWorkUnitsSumToEdgeCount) {
  auto g = MakeChain(9);
  DegreeProgram program;
  EngineOptions options;
  options.num_nodes = 3;
  GasEngine<int, int, DegreeProgram> engine(&g, &program, options);
  int64_t total = 0;
  for (int64_t w : engine.stats().node_work_units) total += w;
  EXPECT_EQ(total, g.num_edges());
}

TEST(GasEngineTest, SimulatedWallDecreasesWithNodes) {
  // Compute-bound model (no comm cost) => more nodes strictly faster.
  auto run = [](int nodes) {
    auto g = MakeChain(2000);
    DegreeProgram program;
    EngineOptions options;
    options.num_nodes = nodes;
    GasEngine<int, int, DegreeProgram> engine(&g, &program, options);
    engine.Run(2);
    ClusterModel model;
    model.bandwidth_bytes_per_sec = 1e15;  // free network
    model.sync_latency_sec = 0.0;
    return engine.SimulatedWallSeconds(model);
  };
  // The measured wall underlying the simulation is milliseconds of work,
  // so one preemption on a loaded CI host can flip the comparison; retry
  // a few times and require a single clean win (a genuine inversion fails
  // every attempt).
  bool faster = false;
  for (int attempt = 0; attempt < 3 && !faster; ++attempt) {
    double t1 = std::min(run(1), run(1));
    double t4 = std::min(run(4), run(4));
    faster = t4 < t1;
  }
  EXPECT_TRUE(faster);
}

TEST(GasEngineTest, CustomPartitionChangesCuts) {
  auto g = MakeChain(8);
  DegreeProgram program;
  EngineOptions options;
  options.num_nodes = 2;
  // Pin the locality-blind baseline: the greedy default may already find a
  // near-contiguous split on a chain.
  options.partitioner = PartitionerKind::kModulo;
  GasEngine<int, int, DegreeProgram> engine(&g, &program, options);
  int64_t modulo_cuts = engine.stats().cut_edges;
  // Contiguous halves: only the middle edge is cut.
  engine.SetPartition({0, 0, 0, 0, 1, 1, 1, 1});
  EXPECT_LT(engine.stats().cut_edges, modulo_cuts);
  EXPECT_EQ(engine.stats().cut_edges, 1);
}

// Emits one raw RNG draw per edge; used to pin down scatter determinism.
struct RngProgram {
  using GatherType = int;
  static constexpr GatherEdges kGatherEdges = GatherEdges::kNone;
  GatherType GatherInit() const { return 0; }
  void Gather(const PropertyGraph<int, uint32_t>&, VertexId, EdgeId,
              GatherType*) const {}
  void Apply(PropertyGraph<int, uint32_t>*, VertexId, const GatherType&) {}
  void Scatter(PropertyGraph<int, uint32_t>* g, EdgeId e, WorkerContext* ctx) {
    g->edge_data(e) = ctx->sampler->rng().NextU32();
  }
  void PostSuperstep(PropertyGraph<int, uint32_t>*, int) {}
  int64_t GlobalStateBytes() const { return 0; }
  int64_t EdgeWorkUnits(EdgeId) const { return 1; }
};

TEST(GasEngineTest, ScatterRngIsDeterministicPerWorkerStream) {
  // Two engines with the same seed must produce identical scatter draws.
  auto make = [] {
    PropertyGraph<int, uint32_t> g;
    for (int i = 0; i < 4; ++i) g.AddVertex(0);
    for (int i = 0; i + 1 < 4; ++i) g.AddEdge(i, i + 1, 0);
    g.Finalize();
    return g;
  };
  auto g1 = make();
  auto g2 = make();
  RngProgram p1, p2;
  EngineOptions options;
  options.seed = 99;
  GasEngine<int, uint32_t, RngProgram> e1(&g1, &p1, options);
  GasEngine<int, uint32_t, RngProgram> e2(&g2, &p2, options);
  e1.RunSuperstep();
  e2.RunSuperstep();
  for (EdgeId e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge_data(e), g2.edge_data(e));
  }
}

}  // namespace
}  // namespace cold::engine

namespace cold::engine {
namespace {

TEST(GasEngineAsyncTest, AsyncSweepVisitsEveryEdgeOnce) {
  auto g = MakeChain(50);
  DegreeProgram program;
  EngineOptions options;
  options.execution = ExecutionMode::kAsync;
  GasEngine<int, int, DegreeProgram> engine(&g, &program, options);
  engine.Run(4);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.edge_data(e), 4);
  }
  EXPECT_EQ(engine.stats().supersteps, 4);
}

TEST(GasEngineAsyncTest, AsyncSkipsGatherApply) {
  auto g = MakeChain(5);
  DegreeProgram program;
  EngineOptions options;
  options.execution = ExecutionMode::kAsync;
  GasEngine<int, int, DegreeProgram> engine(&g, &program, options);
  engine.RunAsyncSweep();
  // Vertex data untouched (gather/apply never ran).
  for (int i = 0; i < 5; ++i) EXPECT_EQ(g.vertex_data(i), 0);
}

TEST(GasEngineAsyncTest, AsyncChargesNoBroadcast) {
  auto g = MakeChain(8);
  DegreeProgram sync_prog, async_prog;
  EngineOptions sync_options;
  sync_options.num_nodes = 4;
  EngineOptions async_options = sync_options;
  async_options.execution = ExecutionMode::kAsync;
  auto g2 = MakeChain(8);
  GasEngine<int, int, DegreeProgram> sync_engine(&g, &sync_prog,
                                                 sync_options);
  GasEngine<int, int, DegreeProgram> async_engine(&g2, &async_prog,
                                                  async_options);
  sync_engine.Run(1);
  async_engine.Run(1);
  EXPECT_LT(async_engine.stats().comm_bytes, sync_engine.stats().comm_bytes);
}

}  // namespace
}  // namespace cold::engine
