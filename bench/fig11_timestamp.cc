// Figure 11: time-stamp prediction accuracy as a function of the tolerance
// range for COLD, COLD-NoLink, EUTB and Pipeline. Paper shape:
// COLD > COLD-NoLink > EUTB >> Pipeline at every tolerance.
#include <algorithm>

#include "baselines/eutb.h"
#include "baselines/pipeline.h"
#include "common.h"
#include "core/predictor.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 11: time-stamp prediction accuracy vs tolerance");

  // Like Fig 7, community-specific temporal modeling needs dense psi
  // estimates: double the users and keep K x T moderate so every active
  // (topic, community) pair holds enough posts. Two folds smooth the
  // single-split noise, which is comparable to the method gaps here.
  data::SyntheticConfig data_config = bench::BenchDataConfig();
  data_config.num_users *= 2;
  data_config.num_topics = 8;
  data_config.num_time_slices = 16;
  data::SocialDataset dataset = bench::GenerateBenchData(data_config);
  const int folds = std::max(2, bench::NumFolds());
  const int num_topics = data_config.num_topics;
  const int max_tolerance = 6;

  std::vector<double> cold_curve(max_tolerance + 1, 0.0);
  std::vector<double> nolink_curve(max_tolerance + 1, 0.0);
  std::vector<double> eutb_curve(max_tolerance + 1, 0.0);
  std::vector<double> pipeline_curve(max_tolerance + 1, 0.0);
  auto add = [](std::vector<double>* acc, const std::vector<double>& v) {
    for (size_t i = 0; i < acc->size(); ++i) (*acc)[i] += v[i];
  };

  for (int fold = 0; fold < folds; ++fold) {
    data::PostSplit split = data::SplitPosts(dataset.posts, 0.2, 77, fold);

    // Dataset-wide vocab: held-out posts carry word ids the training split
    // never saw, and the predictor rejects ids >= V.
    core::ColdConfig cold_config = bench::BenchColdConfig(8, num_topics);
    cold_config.vocab_size = static_cast<int>(dataset.vocabulary.size());
    core::ColdEstimates est =
        bench::TrainCold(cold_config, split.train, &dataset.interactions);
    core::ColdPredictor predictor(est);
    add(&cold_curve,
        bench::TimestampCurve(
            split.test,
            [&](auto words, text::UserId author) {
              return predictor.PredictTimestamp(words, author);
            },
            max_tolerance));

    core::ColdConfig nolink_config = bench::BenchColdConfig(8, num_topics);
    nolink_config.vocab_size = static_cast<int>(dataset.vocabulary.size());
    nolink_config.use_network = false;
    core::ColdEstimates est_nolink =
        bench::TrainCold(nolink_config, split.train, nullptr);
    core::ColdPredictor predictor_nolink(est_nolink);
    add(&nolink_curve,
        bench::TimestampCurve(
            split.test,
            [&](auto words, text::UserId author) {
              return predictor_nolink.PredictTimestamp(words, author);
            },
            max_tolerance));

    baselines::EutbConfig ec;
    ec.num_topics = num_topics;
    ec.alpha = 0.5;
    ec.iterations = 80;
    baselines::EutbModel eutb(ec, split.train);
    if (!eutb.Train().ok()) return 1;
    add(&eutb_curve,
        bench::TimestampCurve(
            split.test,
            [&](auto words, text::UserId author) {
              return eutb.PredictTimestamp(words, author);
            },
            max_tolerance));

    baselines::PipelineConfig pc;
    pc.mmsb.num_communities = 8;
    pc.mmsb.rho = 0.5;
    pc.mmsb.iterations = 60;
    pc.tot.num_topics = num_topics;
    pc.tot.alpha = 0.5;
    pc.tot.iterations = 50;
    baselines::PipelineModel pipeline(pc, split.train, dataset.interactions);
    if (!pipeline.Train().ok()) return 1;
    add(&pipeline_curve,
        bench::TimestampCurve(
            split.test,
            [&](auto words, text::UserId author) {
              return pipeline.PredictTimestamp(words, author);
            },
            max_tolerance));
  }
  for (auto* curve :
       {&cold_curve, &nolink_curve, &eutb_curve, &pipeline_curve}) {
    for (double& v : *curve) v /= folds;
  }

  std::printf("%-16s", "tolerance");
  for (int tol = 0; tol <= max_tolerance; ++tol) std::printf("  %4d ", tol);
  std::printf("\n");
  bench::PrintSeries("COLD", cold_curve, "%.4f");
  bench::PrintSeries("COLD-NoLink", nolink_curve, "%.4f");
  bench::PrintSeries("EUTB", eutb_curve, "%.4f");
  bench::PrintSeries("Pipeline", pipeline_curve, "%.4f");
  std::printf("\n(paper shape: COLD > COLD-NoLink > EUTB >> Pipeline)\n");
  return 0;
}
