# Empty dependencies file for cold_text.
# This may be replaced when dependencies are built.
