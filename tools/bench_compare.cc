// bench_compare — the bench-regression gate's CLI (DESIGN.md §11).
//
// Usage: bench_compare <baseline.json> <current.json> [--tolerance 0.10]
//
// Diffs every throughput metric (keys containing "per_sec"; arrays reduced
// to their max) of a fresh BENCH_*.json against a committed baseline and
// prints a per-metric delta report. Exit codes: 0 = within tolerance,
// 1 = regression or metric missing from the current file, 2 = usage or
// unreadable/invalid input. Wired into ctest as bench_regression via
// tools/bench_regression.sh; run it by hand when updating baselines (see
// DESIGN.md §11 for the workflow).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_compare_lib.h"
#include "serve/json.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> [--tolerance F]\n"
               "  F is the allowed relative throughput drop (default 0.10)\n",
               argv0);
  return 2;
}

bool LoadJson(const char* path, cold::serve::Json* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path);
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = cold::serve::Json::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path,
                 parsed.status().ToString().c_str());
    return false;
  }
  *out = std::move(parsed).ValueOrDie();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double tolerance = 0.10;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      char* end = nullptr;
      tolerance = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || tolerance < 0.0 ||
          tolerance >= 1.0) {
        std::fprintf(stderr, "bench_compare: tolerance must be in [0, 1)\n");
        return 2;
      }
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    return Usage(argv[0]);
  }

  cold::serve::Json baseline, current;
  if (!LoadJson(baseline_path, &baseline) ||
      !LoadJson(current_path, &current)) {
    return 2;
  }

  cold::bench::CompareResult result =
      cold::bench::CompareBenchJson(baseline, current, tolerance);
  if (result.metrics.empty()) {
    std::fprintf(stderr,
                 "bench_compare: baseline %s contains no *per_sec metrics\n",
                 baseline_path);
    return 2;
  }
  cold::bench::PrintDeltaReport(result, tolerance, std::cout);
  return result.ok() ? 0 : 1;
}
