// Walker/Vose alias tables: O(n) build, O(1) categorical draws.
//
// The sparse topic kernel (sparse_topic_kernel.h) serves the slowly-changing
// dense prior mass of Eq. (3) from one alias table per (community, time)
// cell, so a proposal draw costs two RNG calls instead of an O(K) CDF scan.
// Construction is fully deterministic (stacks filled and drained in index
// order), and Sample() consumes exactly two RNG draws regardless of the
// outcome — both properties the trainers' bit-identical-replay guarantees
// rely on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace cold::core {

/// \brief Alias-method sampler over a fixed weight vector.
class AliasTable {
 public:
  AliasTable() = default;

  /// \brief (Re)builds the table from non-negative unnormalized weights.
  /// A degenerate vector (all-zero or non-finite total) builds the uniform
  /// distribution. Reuses internal storage across rebuilds.
  void Build(std::span<const double> weights);

  /// \brief Draws an index in [0, size()). Consumes exactly two RNG draws
  /// (one UniformInt, one Uniform) on every call.
  int Sample(RandomSampler& rng) const {
    const uint32_t i =
        rng.UniformInt(static_cast<uint32_t>(accept_.size()));
    const double u = rng.Uniform();
    return u < accept_[i] ? static_cast<int>(i) : alias_[i];
  }

  /// Normalized probability of index `i` under the built weights.
  double Probability(int i) const { return prob_[static_cast<size_t>(i)]; }

  /// log(Probability(i)); -inf for zero-weight entries. Precomputed at
  /// Build() so the MH accept ratio reads it instead of calling std::log.
  double LogProbability(int i) const {
    return log_prob_[static_cast<size_t>(i)];
  }

  size_t size() const { return accept_.size(); }
  bool empty() const { return accept_.empty(); }

 private:
  std::vector<double> accept_;  // acceptance threshold per bucket
  std::vector<int32_t> alias_;  // fallback index per bucket
  std::vector<double> prob_;    // normalized weights
  std::vector<double> log_prob_;
  // Build() scratch, kept to avoid per-rebuild allocation.
  std::vector<double> scaled_;
  std::vector<int32_t> small_;
  std::vector<int32_t> large_;
};

}  // namespace cold::core
