// Sparse (alias + Metropolis-Hastings) machinery for the Eq. (3) topic
// kernel.
//
// The collapsed topic conditional factors as
//
//   p(z = k | ...) ∝ [ (n_ck+α)(n_ckt+ε)/(n_ck+Tε) ]      (prior mass)
//                  × [ word / length Dirichlet-multinomial terms ]
//
// The prior mass changes slowly — one count per post move — so it is served
// as a stale proposal q(k) from a per-(community, time) alias table rebuilt
// lazily on a count-change budget (TopicAliasBank). A Metropolis-Hastings
// accept step against the *exact* log-weight (evaluated for the single
// proposed topic in O(post length) via cached logs plus an integer-indexed
// lgamma table) keeps the stationary distribution exact for any staleness:
//
//   accept k->k' with min(1, exp(lw(k') - lw(k)) * q(k)/q(k'))
//
// q has full support (every factor of the prior mass is > 0), which is the
// only requirement on an independence proposal. Per-draw cost is amortized
// O(post length), independent of K, versus the dense kernel's O(K * length).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/alias_table.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace cold::core {

/// \brief Integer-indexed log-gamma table: At(n) = lgamma(n + offset).
///
/// Eq. (3)'s length-denominator ascending factorial is
/// lgamma(n_k + Vβ + len) - lgamma(n_k + Vβ) with integer n_k and len, so
/// with G[n] = lgamma(n + Vβ) it collapses to two table reads — removing
/// the one live lgamma per (topic, post) evaluation that dominates the
/// dense kernel. Entries are computed independently (one lgamma each, no
/// cumulative summation), so a table read is bit-identical to the live
/// call it replaces and no rounding error accumulates across the table.
class LGammaTable {
 public:
  /// \brief Builds G[n] for n in [0, max_n], capped at kMaxEntries (larger
  /// arguments fall back to live lgamma in At()).
  void Build(double offset, int64_t max_n);

  bool built() const { return !table_.empty(); }

  double At(int64_t n) const {
    if (n >= 0 && n < static_cast<int64_t>(table_.size())) {
      return table_[static_cast<size_t>(n)];
    }
    return cold::LGamma(static_cast<double>(n) + offset_);
  }

  /// \brief sum_{q=0}^{cnt-1} log(n + offset + q), matching
  /// cold::LogAscendingFactorial(n + offset, cnt) including its
  /// small-count log-loop form.
  double LogAscFactorial(int64_t n, int cnt) const {
    if (cnt <= 0) return 0.0;
    if (cnt < cold::kLogAscFactorialSmallCount) {
      const double base = static_cast<double>(n) + offset_;
      double acc = 0.0;
      for (int q = 0; q < cnt; ++q) acc += std::log(base + q);
      return acc;
    }
    return At(n + cnt) - At(n);
  }

  /// 8M entries (64 MB) — covers every realistic corpus; beyond it At()
  /// degrades gracefully to live lgamma.
  static constexpr int64_t kMaxEntries = int64_t{1} << 23;

 private:
  double offset_ = 0.0;
  std::vector<double> table_;
};

/// \brief Per-(community, time) alias tables over the Eq. (3) prior mass,
/// with lazy budgeted rebuilds.
///
/// Staleness policy: every post add/remove in community c bumps a per-
/// community counter; once it exceeds the rebuild budget, all T rows of c
/// are marked dirty and rebuilt from live counters on next touch. MH keeps
/// the chain exact regardless, so the budget trades proposal quality
/// against rebuild cost only. InvalidateAll() (called at every serial
/// sweep start and after checkpoint restore) makes sampler state at sweep
/// boundaries independent of alias staleness carried across sweeps — the
/// property that keeps checkpoint resume bit-identical.
class TopicAliasBank {
 public:
  /// \brief Sizes the bank for C x T rows of K topics and sets the
  /// count-change budget; marks everything dirty.
  void Reset(int num_communities, int num_time_slices, int num_topics,
             int rebuild_budget);

  /// Marks every row dirty and zeroes the per-community update counters.
  void InvalidateAll();

  /// \brief Records one count change in community c; trips the budget.
  void NoteCommunityUpdate(int c) {
    if (++updates_[static_cast<size_t>(c)] >= rebuild_budget_) {
      MarkCommunityDirty(c);
    }
  }

  bool RowDirty(int c, int t) const {
    return dirty_[Index(c, t)];
  }

  /// \brief Rebuilds row (c, t) from `weights` (size K) and clears its
  /// dirty bit.
  void RebuildRow(int c, int t, std::span<const double> weights) {
    rows_[Index(c, t)].Build(weights);
    dirty_[Index(c, t)] = false;
  }

  const AliasTable& Row(int c, int t) const { return rows_[Index(c, t)]; }

  int num_topics() const { return num_topics_; }
  int rebuild_budget() const { return rebuild_budget_; }

 private:
  size_t Index(int c, int t) const {
    return static_cast<size_t>(c) * static_cast<size_t>(num_time_slices_) +
           static_cast<size_t>(t);
  }
  void MarkCommunityDirty(int c);

  int num_communities_ = 0;
  int num_time_slices_ = 0;
  int num_topics_ = 0;
  int rebuild_budget_ = 1;
  std::vector<AliasTable> rows_;
  std::vector<uint8_t> dirty_;
  std::vector<int32_t> updates_;
};

/// \brief Runs `mh_steps` Metropolis-Hastings steps from topic `k_init`
/// using `proposal` as the (possibly stale) independence proposal and
/// `eval_log_weight(k)` as the exact unnormalized log target. Returns the
/// final topic.
///
/// RNG consumption is a deterministic function of sampler state: two draws
/// per proposal, plus one accept draw only when the log ratio is negative
/// (a self-proposal or dominating ratio accepts without drawing).
template <typename EvalFn>
int MhTopicDraw(const AliasTable& proposal, int k_init, int mh_steps,
                RandomSampler& rng, EvalFn&& eval_log_weight) {
  int k = k_init;
  double lw_k = eval_log_weight(k);
  for (int step = 0; step < mh_steps; ++step) {
    const int k2 = proposal.Sample(rng);
    if (k2 == k) continue;  // ratio is exactly 1: accept, nothing changes
    const double lw_k2 = eval_log_weight(k2);
    const double log_ratio = (lw_k2 - lw_k) + proposal.LogProbability(k) -
                             proposal.LogProbability(k2);
    if (log_ratio >= 0.0 || std::log(rng.Uniform()) < log_ratio) {
      k = k2;
      lw_k = lw_k2;
    }
  }
  return k;
}

}  // namespace cold::core
