// Tests for the bench-regression gate's comparison core
// (tools/bench_compare_lib.h): metric discovery, tolerance bands, the
// injected-regression case the gate exists for, and missing-metric
// detection.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bench_compare_lib.h"
#include "serve/json.h"

namespace cold::bench {
namespace {

serve::Json ParseOrDie(const std::string& text) {
  auto parsed = serve::Json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return std::move(parsed).ValueOrDie();
}

// A miniature BENCH_*.json in the shape the real benches emit: nested
// objects, an array of scale points, and a thread series array.
const char kBaseline[] = R"({
  "bench": "sampler_hotpath",
  "scales": [
    {
      "num_users": 100,
      "tokens_per_sec": 1000000.0,
      "links_per_sec": 50000.0,
      "threads": [
        {"threads": 1, "tokens_per_sec": 900000.0},
        {"threads": 2, "tokens_per_sec": [1500000.0, 1600000.0]}
      ]
    }
  ],
  "serial_tokens_per_sec": 800000.0,
  "note_per_sec": "a per_sec key without a numeric value is not a metric"
})";

TEST(BenchCompareTest, IdenticalFilesPass) {
  serve::Json baseline = ParseOrDie(kBaseline);
  serve::Json current = ParseOrDie(kBaseline);
  CompareResult result = CompareBenchJson(baseline, current, 0.10);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.regressions, 0);
  EXPECT_EQ(result.missing, 0);
  // tokens_per_sec (scale), links_per_sec, two thread points, serial.
  EXPECT_EQ(result.metrics.size(), 5u);
}

TEST(BenchCompareTest, InjectedTwentyPercentRegressionFails) {
  serve::Json baseline = ParseOrDie(kBaseline);
  // Every throughput metric degraded by exactly 20%: with a 10% tolerance
  // the gate must flag all of them.
  serve::Json current = ParseOrDie(R"({
    "bench": "sampler_hotpath",
    "scales": [
      {
        "num_users": 100,
        "tokens_per_sec": 800000.0,
        "links_per_sec": 40000.0,
        "threads": [
          {"threads": 1, "tokens_per_sec": 720000.0},
          {"threads": 2, "tokens_per_sec": [1200000.0, 1280000.0]}
        ]
      }
    ],
    "serial_tokens_per_sec": 640000.0
  })");
  CompareResult result = CompareBenchJson(baseline, current, 0.10);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions, 5);
  EXPECT_EQ(result.missing, 0);
  for (const MetricDelta& m : result.metrics) {
    EXPECT_TRUE(m.regression) << m.path;
    EXPECT_NEAR(m.delta, -0.20, 1e-9) << m.path;
  }
  // ...but a 25% tolerance waves the same drop through.
  EXPECT_TRUE(CompareBenchJson(baseline, current, 0.25).ok());
}

TEST(BenchCompareTest, DropWithinToleranceAndImprovementsPass) {
  serve::Json baseline = ParseOrDie(R"({"tokens_per_sec": 1000.0})");
  // 5% drop under a 10% band: ok.
  EXPECT_TRUE(CompareBenchJson(baseline, ParseOrDie(R"({"tokens_per_sec": 950.0})"),
                               0.10)
                  .ok());
  // Improvements never fail, whatever the tolerance.
  EXPECT_TRUE(CompareBenchJson(baseline, ParseOrDie(R"({"tokens_per_sec": 2000.0})"),
                               0.0)
                  .ok());
  // Just past the band: regression.
  EXPECT_FALSE(CompareBenchJson(baseline,
                                ParseOrDie(R"({"tokens_per_sec": 899.0})"),
                                0.10)
                   .ok());
}

TEST(BenchCompareTest, MissingMetricFailsTheGate) {
  serve::Json baseline = ParseOrDie(kBaseline);
  // The current file silently dropped the thread series and the serial
  // number — both must be reported missing, not skipped.
  serve::Json current = ParseOrDie(R"({
    "scales": [
      {"tokens_per_sec": 1000000.0, "links_per_sec": 50000.0}
    ]
  })");
  CompareResult result = CompareBenchJson(baseline, current, 0.10);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions, 0);
  EXPECT_EQ(result.missing, 3);
}

TEST(BenchCompareTest, ArraySeriesCompareByMax) {
  // A thread sweep is summarized by its best sustained rate, so a slower
  // first point with an unchanged peak is not a regression...
  serve::Json baseline = ParseOrDie(R"({"tokens_per_sec": [100.0, 200.0]})");
  serve::Json faster_tail = ParseOrDie(R"({"tokens_per_sec": [50.0, 200.0]})");
  EXPECT_TRUE(CompareBenchJson(baseline, faster_tail, 0.10).ok());
  // ...while a collapsed peak is.
  serve::Json collapsed = ParseOrDie(R"({"tokens_per_sec": [100.0, 120.0]})");
  EXPECT_FALSE(CompareBenchJson(baseline, collapsed, 0.10).ok());
}

TEST(BenchCompareTest, ZeroBaselinesAndNonNumericNodesAreSkipped) {
  serve::Json baseline = ParseOrDie(R"({
    "tokens_per_sec": 0.0,
    "empty_per_sec": [],
    "real_per_sec": 10.0
  })");
  serve::Json current = ParseOrDie(R"({"real_per_sec": 10.0})");
  CompareResult result = CompareBenchJson(baseline, current, 0.10);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.metrics.size(), 1u);
  EXPECT_EQ(result.metrics[0].path, "real_per_sec");
}

TEST(BenchCompareTest, DeltaReportNamesEveryVerdict) {
  serve::Json baseline =
      ParseOrDie(R"({"a_per_sec": 100.0, "b_per_sec": 100.0})");
  serve::Json current = ParseOrDie(R"({"a_per_sec": 10.0})");
  CompareResult result = CompareBenchJson(baseline, current, 0.10);
  std::ostringstream os;
  PrintDeltaReport(result, 0.10, os);
  std::string report = os.str();
  EXPECT_NE(report.find("REGRESSION"), std::string::npos);
  EXPECT_NE(report.find("MISSING"), std::string::npos);
  EXPECT_NE(report.find("FAIL"), std::string::npos);

  std::ostringstream ok_os;
  PrintDeltaReport(CompareBenchJson(baseline, baseline, 0.10), 0.10, ok_os);
  EXPECT_NE(ok_os.str().find("PASS"), std::string::npos);
}

}  // namespace
}  // namespace cold::bench
