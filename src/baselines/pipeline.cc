#include "baselines/pipeline.h"

#include <algorithm>

#include "util/math_util.h"

namespace cold::baselines {

PipelineModel::PipelineModel(PipelineConfig config,
                             const text::PostStore& posts,
                             const graph::Digraph& links)
    : config_(config), posts_(posts), links_(links) {}

cold::Status PipelineModel::Train() {
  // Stage 1: communities from links only.
  mmsb_ = std::make_unique<MmsbModel>(config_.mmsb, links_,
                                      posts_.num_users());
  COLD_RETURN_NOT_OK(mmsb_->Train());

  const int C = config_.mmsb.num_communities;
  user_communities_.resize(static_cast<size_t>(posts_.num_users()));
  std::vector<std::vector<text::PostId>> community_posts(
      static_cast<size_t>(C));
  for (int i = 0; i < posts_.num_users(); ++i) {
    user_communities_[static_cast<size_t>(i)] =
        mmsb_->TopCommunities(i, config_.communities_per_user);
    for (text::PostId d : posts_.posts_of(i)) {
      for (int c : user_communities_[static_cast<size_t>(i)]) {
        community_posts[static_cast<size_t>(c)].push_back(d);
      }
    }
  }

  // Stage 2: an independent TOT per community's member posts.
  tots_.resize(static_cast<size_t>(C));
  for (int c = 0; c < C; ++c) {
    if (community_posts[static_cast<size_t>(c)].empty()) continue;
    TotConfig tot_config = config_.tot;
    tot_config.seed = config_.tot.seed + static_cast<uint64_t>(c) + 1;
    tots_[static_cast<size_t>(c)] =
        std::make_unique<TotModel>(tot_config, posts_);
    COLD_RETURN_NOT_OK(tots_[static_cast<size_t>(c)]->Train(
        community_posts[static_cast<size_t>(c)]));
  }
  return cold::Status::OK();
}

std::vector<double> PipelineModel::TimestampScores(
    std::span<const text::WordId> words, text::UserId author) const {
  std::vector<double> scores(static_cast<size_t>(posts_.num_time_slices()),
                             0.0);
  int used = 0;
  for (int c : user_communities_[static_cast<size_t>(author)]) {
    const TotModel* tot = tots_[static_cast<size_t>(c)].get();
    if (tot == nullptr) continue;
    std::vector<double> part = tot->TimestampScores(words);
    for (size_t t = 0; t < scores.size() && t < part.size(); ++t) {
      scores[t] += part[t];
    }
    ++used;
  }
  if (used == 0) {
    // No community model: uniform fallback.
    std::fill(scores.begin(), scores.end(), 1.0);
  }
  cold::NormalizeInPlace(scores);
  return scores;
}

int PipelineModel::PredictTimestamp(std::span<const text::WordId> words,
                                    text::UserId author) const {
  std::vector<double> scores = TimestampScores(words, author);
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace cold::baselines
