// The COLD prediction service: JSON endpoints over a hot-swappable
// ColdPredictor snapshot (§5.2's online half).
//
//   POST /v1/diffusion                Eq. (7)  P(candidate retweets post)
//   POST /v1/topic_posterior          Eq. (5)  P(k | words, author)
//   POST /v1/link                     §6.2     link score P_{i->i'}
//   POST /v1/timestamp                §6.3     time-slice distribution
//   GET  /v1/influential_communities  §6.6     top communities per topic
//   GET  /healthz                     liveness + model dimensions
//   GET  /metrics                     Prometheus text exposition (src/obs)
//   GET  /debug/vars                  full JSON telemetry snapshot
//   POST /admin/reload                atomic snapshot hot-reload
//
// Replica routing: the service holds R ColdPredictor replicas behind one
// atomically swapped RouterState. A query is routed by the home community
// of its author (TopComm(author)[0] mod R), so each replica's posterior
// cache concentrates on a disjoint slice of the community space instead
// of all replicas thrashing one global LRU. Each replica's cache is
// itself sharded (ShardedLruCache) so reactor threads landing on the
// same replica contend per-shard, not per-cache.
//
// Hot reload is an O(1) generation pointer swap: the new RouterState is
// fully constructed off to the side (for COLDARN1 arena snapshots the
// replicas are zero-copy views into one shared mmap), then installed with
// a single atomic store — cold/serve/reload_swap_seconds measures exactly
// that store, which is why the p99 reload stall is microseconds. Requests
// pin the RouterState they loaded, so a reload never invalidates an
// in-flight computation and old snapshots free themselves when their last
// request completes.
//
// Single-candidate /v1/diffusion — the serving hot path — computes inline
// on the calling (reactor) thread: one cache-assisted Eq. (5) posterior
// plus one DiffusionFromPosterior, no queue hop. Multi-candidate fan-outs
// still micro-batch through the drain thread so the O(K |w_d|) posterior
// is computed once per post and shared across candidates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "serve/lru_cache.h"
#include "util/status.h"

namespace cold::serve {

struct ModelServiceOptions {
  /// Snapshot reloaded by POST /admin/reload (without a "path" override)
  /// and by SIGHUP in the cold_serve tool. May be empty for in-process
  /// services constructed from estimates directly. COLDEST1 and COLDARN1
  /// files are both accepted (sniffed by magic).
  std::string model_path;
  /// |TopComm(i)| used when constructing predictors (the paper fixes 5).
  int top_communities = 5;
  /// Replicas queries are sharded across by home community (clamped to
  /// >= 1). Arena snapshots share one mmap across all replicas; legacy
  /// COLDEST1 loads share one predictor.
  int num_replicas = 1;
  /// Total entries across each replica's posterior LRU; 0 disables
  /// caching. The per-replica budget is capacity / num_replicas.
  size_t posterior_cache_capacity = 4096;
  /// Mutex shards within each replica's posterior cache.
  size_t cache_shards = 8;
  /// Micro-batching of multi-candidate /v1/diffusion fan-outs. Disabled,
  /// requests compute inline. Single-candidate requests always compute
  /// inline.
  bool batching_enabled = true;
  /// Max requests drained into one batch.
  size_t max_batch = 64;
  /// How long a drain waits for the batch to fill once non-empty.
  int batch_wait_us = 200;
  /// Monte-Carlo IC trials for /v1/influential_communities (§6.6).
  int influence_trials = 64;
  /// Requests slower than this are logged with method/path/latency/batch
  /// size (the slow-request log); 0 disables it.
  int slow_request_ms = 0;
};

class ModelService {
 public:
  explicit ModelService(ModelServiceOptions options);
  /// Drains the batching queue (pending requests are still answered).
  ~ModelService();

  ModelService(const ModelService&) = delete;
  ModelService& operator=(const ModelService&) = delete;

  /// \brief Loads a snapshot (COLDARN1 arena or legacy COLDEST1, sniffed
  /// by magic) and swaps it in atomically. On failure the previous model
  /// keeps serving.
  cold::Status LoadFromFile(const std::string& path);

  /// \brief Reloads from options.model_path (the SIGHUP path).
  cold::Status Reload() { return LoadFromFile(options_.model_path); }

  /// \brief Installs an in-memory predictor (tests, examples), shared by
  /// every replica slot.
  void SetPredictor(std::shared_ptr<const core::ColdPredictor> predictor);

  /// \brief Replica 0 of the current snapshot; may be nullptr before the
  /// first load.
  std::shared_ptr<const core::ColdPredictor> predictor() const;

  /// Number of successful swaps (initial load counts).
  int64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  int num_replicas() const { return num_replicas_; }

  /// \brief The replica index author routes to under the current
  /// snapshot (exposed for router tests); 0 when no model is loaded.
  int ReplicaForAuthor(text::UserId author) const;

  /// \brief The HTTP entry point, safe for concurrent calls; wire this
  /// into HttpServer as the handler.
  HttpResponse Handle(const HttpRequest& request);

 private:
  /// One immutable generation of the service: R predictor replicas over
  /// one shared snapshot. Swapped wholesale by reloads.
  struct RouterState {
    int64_t generation = 0;
    /// "coldarn1" (mmap arena), "coldest1" (legacy file) or "in_memory".
    std::string format;
    std::vector<std::shared_ptr<const core::ColdPredictor>> replicas;
  };

  struct PendingDiffusion {
    std::shared_ptr<const core::ColdPredictor> model;
    int64_t generation = 0;
    int replica = 0;
    text::UserId publisher = 0;
    text::UserId candidate = 0;
    std::vector<text::WordId> words;
    std::promise<double> promise;
  };

  /// Per-(replica, shard) cache counters exported as
  /// cold/serve/cache_{hits,misses,evictions}{replica=..,shard=..}.
  struct ShardMetrics {
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* evictions;
  };

  HttpResponse Route(const HttpRequest& request, const char** endpoint);
  HttpResponse HandleDiffusion(const HttpRequest& request);
  HttpResponse HandleTopicPosterior(const HttpRequest& request);
  HttpResponse HandleLink(const HttpRequest& request);
  HttpResponse HandleTimestamp(const HttpRequest& request);
  HttpResponse HandleInfluentialCommunities(const HttpRequest& request);
  HttpResponse HandleHealth();
  HttpResponse HandleMetrics();
  HttpResponse HandleDebugVars();
  HttpResponse HandleReload(const HttpRequest& request);

  std::shared_ptr<const RouterState> state() const {
    return router_.load(std::memory_order_acquire);
  }

  /// Builds the next generation around `replicas` and installs it with
  /// one atomic store (timed by cold/serve/reload_swap_seconds).
  void InstallReplicas(
      std::vector<std::shared_ptr<const core::ColdPredictor>> replicas,
      std::string format);

  static int ReplicaFor(const RouterState& state, text::UserId author);

  /// Cache-assisted Eq. (5) against `replica`'s cache; never nullptr for
  /// validated inputs.
  std::shared_ptr<const std::vector<double>> PosteriorFor(
      const core::ColdPredictor& model, int replica, int64_t generation,
      text::UserId author, const std::vector<text::WordId>& words);

  /// Enqueues one diffusion scoring; the future resolves after a drain.
  std::future<double> EnqueueDiffusion(
      std::shared_ptr<const core::ColdPredictor> model, int64_t generation,
      int replica, text::UserId publisher, text::UserId candidate,
      std::vector<text::WordId> words);

  void BatchLoop();
  void ExecuteBatch(std::vector<PendingDiffusion>* batch);

  const ModelServiceOptions options_;
  const int num_replicas_;

  std::atomic<std::shared_ptr<const RouterState>> router_;
  std::atomic<int64_t> generation_{0};
  /// Serializes reloads (the swap itself is a single atomic store).
  std::mutex reload_mutex_;

  /// One sharded posterior cache per replica, stable across reloads
  /// (entries are generation-keyed, so stale hits are impossible).
  std::vector<std::unique_ptr<ShardedLruCache<std::vector<double>>>> caches_;
  std::vector<std::vector<ShardMetrics>> shard_metrics_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingDiffusion> queue_;
  bool stopping_ = false;
  std::thread batch_thread_;
};

}  // namespace cold::serve
