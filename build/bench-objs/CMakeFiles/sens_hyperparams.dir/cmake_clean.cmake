file(REMOVE_RECURSE
  "../bench/sens_hyperparams"
  "../bench/sens_hyperparams.pdb"
  "CMakeFiles/sens_hyperparams.dir/sens_hyperparams.cc.o"
  "CMakeFiles/sens_hyperparams.dir/sens_hyperparams.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
