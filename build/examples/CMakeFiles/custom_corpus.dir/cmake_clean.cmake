file(REMOVE_RECURSE
  "CMakeFiles/custom_corpus.dir/custom_corpus.cpp.o"
  "CMakeFiles/custom_corpus.dir/custom_corpus.cpp.o.d"
  "custom_corpus"
  "custom_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
