#include <gtest/gtest.h>

#include "text/post_store.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace cold::text {
namespace {

// ------------------------------------------------------------ Vocabulary --

TEST(VocabularyTest, AddAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Add("alpha"), 0);
  EXPECT_EQ(vocab.Add("beta"), 1);
  EXPECT_EQ(vocab.Add("alpha"), 0);
  EXPECT_EQ(vocab.size(), 2);
  EXPECT_EQ(vocab.word(0), "alpha");
  EXPECT_EQ(vocab.word(1), "beta");
}

TEST(VocabularyTest, CountsOccurrences) {
  Vocabulary vocab;
  vocab.Add("x");
  vocab.Add("x");
  vocab.Add("y");
  EXPECT_EQ(vocab.count(0), 2);
  EXPECT_EQ(vocab.count(1), 1);
}

TEST(VocabularyTest, LookupUnknownReturnsMinusOne) {
  Vocabulary vocab;
  vocab.Add("known");
  EXPECT_EQ(vocab.Lookup("known"), 0);
  EXPECT_EQ(vocab.Lookup("unknown"), -1);
}

TEST(VocabularyTest, PruneDropsRareWordsAndRemaps) {
  Vocabulary vocab;
  vocab.Add("common");
  vocab.Add("common");
  vocab.Add("common");
  vocab.Add("rare");
  vocab.Add("frequent");
  vocab.Add("frequent");
  std::vector<WordId> remap;
  Vocabulary pruned = vocab.Prune(2, &remap);
  EXPECT_EQ(pruned.size(), 2);
  EXPECT_EQ(pruned.Lookup("common"), remap[0]);
  EXPECT_EQ(remap[1], -1);  // "rare" dropped
  EXPECT_EQ(pruned.Lookup("frequent"), remap[2]);
  EXPECT_EQ(pruned.count(pruned.Lookup("common")), 3);
}

// ------------------------------------------------------------- Tokenizer --

TEST(TokenizerTest, SplitsAndLowercases) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("Hello, World! Foo-bar");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "foo");
  EXPECT_EQ(tokens[3], "bar");
}

TEST(TokenizerTest, DropsStopWords) {
  Tokenizer tokenizer;
  tokenizer.AddDefaultStopWords();
  auto tokens = tokenizer.Tokenize("the cat and the hat");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "cat");
  EXPECT_EQ(tokens[1], "hat");
}

TEST(TokenizerTest, DropsShortTokensAndNumbers) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("a I 42 2023 ok word");
  // "a"/"I" too short, "42"/"2023" numeric, "ok"+"word" kept.
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "ok");
  EXPECT_EQ(tokens[1], "word");
}

TEST(TokenizerTest, CustomStopWordsApplyLowercased) {
  Tokenizer tokenizer;
  tokenizer.AddStopWord("SPAM");
  auto tokens = tokenizer.Tokenize("spam ham Spam");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "ham");
}

TEST(TokenizerTest, KeepsAlphanumericMix) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("web2 covid19");
  ASSERT_EQ(tokens.size(), 2u);
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("  ,.;  ").empty());
}

// ------------------------------------------------------------- PostStore --

PostStore MakeStore() {
  PostStore store;
  store.Add(/*author=*/0, /*time=*/2, std::vector<WordId>{1, 2, 2});
  store.Add(/*author=*/1, /*time=*/0, std::vector<WordId>{3});
  store.Add(/*author=*/0, /*time=*/1, std::vector<WordId>{4, 1});
  store.Finalize();
  return store;
}

TEST(PostStoreTest, BasicAccessors) {
  PostStore store = MakeStore();
  EXPECT_EQ(store.num_posts(), 3);
  EXPECT_EQ(store.num_users(), 2);
  EXPECT_EQ(store.num_time_slices(), 3);
  EXPECT_EQ(store.num_tokens(), 6);
  EXPECT_EQ(store.author(0), 0);
  EXPECT_EQ(store.time(1), 0);
  EXPECT_EQ(store.length(0), 3);
  ASSERT_EQ(store.words(2).size(), 2u);
  EXPECT_EQ(store.words(2)[0], 4);
}

TEST(PostStoreTest, PostsOfUser) {
  PostStore store = MakeStore();
  auto posts0 = store.posts_of(0);
  ASSERT_EQ(posts0.size(), 2u);
  EXPECT_EQ(posts0[0], 0);
  EXPECT_EQ(posts0[1], 2);
  auto posts1 = store.posts_of(1);
  ASSERT_EQ(posts1.size(), 1u);
  EXPECT_EQ(posts1[0], 1);
}

TEST(PostStoreTest, WordCountsAggregatesDuplicates) {
  PostStore store = MakeStore();
  auto counts = store.WordCounts(0);
  ASSERT_EQ(counts.size(), 2u);
  // Order of first occurrence: word 1 then word 2.
  EXPECT_EQ(counts[0].first, 1);
  EXPECT_EQ(counts[0].second, 1);
  EXPECT_EQ(counts[1].first, 2);
  EXPECT_EQ(counts[1].second, 2);
}

TEST(PostStoreTest, FinalizeReservesIdSpace) {
  PostStore store;
  store.Add(0, 0, std::vector<WordId>{1});
  store.Finalize(/*min_users=*/10, /*min_time_slices=*/24);
  EXPECT_EQ(store.num_users(), 10);
  EXPECT_EQ(store.num_time_slices(), 24);
  EXPECT_TRUE(store.posts_of(7).empty());
}

TEST(PostStoreTest, EmptyPostAllowed) {
  PostStore store;
  store.Add(0, 0, std::vector<WordId>{});
  store.Finalize();
  EXPECT_EQ(store.length(0), 0);
  EXPECT_TRUE(store.words(0).empty());
  EXPECT_TRUE(store.WordCounts(0).empty());
}

}  // namespace
}  // namespace cold::text
