# Empty dependencies file for recovery_quality.
# This may be replaced when dependencies are built.
