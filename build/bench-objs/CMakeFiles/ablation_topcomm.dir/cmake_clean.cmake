file(REMOVE_RECURSE
  "../bench/ablation_topcomm"
  "../bench/ablation_topcomm.pdb"
  "CMakeFiles/ablation_topcomm.dir/ablation_topcomm.cc.o"
  "CMakeFiles/ablation_topcomm.dir/ablation_topcomm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_topcomm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
