// Read-only mmap of a COLDARN1 model snapshot (core/model_io.h) for the
// serving layer. One ArenaSnapshot is one immutable generation: requests
// pin it via shared_ptr, so a hot-reload maps the new file, validates it,
// and swaps a pointer — the old mapping unmaps itself when the last
// in-flight request drops its reference. Validation (CRC + finiteness) runs
// once at open time, off the serving fast path; a corrupt or torn file is
// rejected here and the previous generation keeps serving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/model_io.h"
#include "util/status.h"

namespace cold::serve {

class ArenaSnapshot {
 public:
  /// \brief Maps `path` read-only and validates it as a COLDARN1 arena.
  /// Returns the snapshot behind shared_ptr so predictors can pin it.
  static cold::Result<std::shared_ptr<const ArenaSnapshot>> Map(
      const std::string& path);

  ~ArenaSnapshot();
  ArenaSnapshot(const ArenaSnapshot&) = delete;
  ArenaSnapshot& operator=(const ArenaSnapshot&) = delete;

  const core::EstimatesView& view() const { return arena_.view; }
  const int32_t* top_comm() const { return arena_.top_comm; }
  int top_m() const { return arena_.top_m; }
  size_t size_bytes() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  ArenaSnapshot(std::string path, void* base, size_t size,
                core::ArenaView arena)
      : path_(std::move(path)), base_(base), size_(size), arena_(arena) {}

  std::string path_;
  void* base_ = nullptr;
  size_t size_ = 0;
  core::ArenaView arena_;
};

}  // namespace cold::serve
