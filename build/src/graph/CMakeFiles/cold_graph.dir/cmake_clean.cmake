file(REMOVE_RECURSE
  "CMakeFiles/cold_graph.dir/digraph.cc.o"
  "CMakeFiles/cold_graph.dir/digraph.cc.o.d"
  "CMakeFiles/cold_graph.dir/pagerank.cc.o"
  "CMakeFiles/cold_graph.dir/pagerank.cc.o.d"
  "libcold_graph.a"
  "libcold_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
