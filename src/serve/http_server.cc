#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace cold::serve {

namespace {

struct ServerMetrics {
  obs::Counter* connections;
  obs::Counter* malformed_requests;
  obs::Counter* dropped_at_shutdown;
  obs::Counter* shed;
  obs::Counter* write_timeouts;
  obs::Counter* idle_closes;
};

ServerMetrics& Metrics() {
  auto& registry = obs::Registry::Global();
  static ServerMetrics metrics{
      registry.GetCounter("cold/serve/connections"),
      registry.GetCounter("cold/serve/malformed_requests"),
      registry.GetCounter("cold/serve/connections_force_closed"),
      registry.GetCounter("cold/serve/shed_total"),
      registry.GetCounter("cold/serve/write_timeouts"),
      registry.GetCounter("cold/serve/idle_closes")};
  return metrics;
}

/// The PR-2 serving core: accept loop + ThreadPool, one worker pinned per
/// connection for its lifetime. Kept as the bench baseline and fallback;
/// the event loop in event_loop.cc is the default.
class BlockingServerImpl : public HttpServerImpl {
 public:
  BlockingServerImpl(HttpServerOptions options, HttpHandler handler)
      : options_(std::move(options)), handler_(std::move(handler)) {}

  ~BlockingServerImpl() override { Stop(); }

  cold::Status Start() override;
  void Stop() override;
  int port() const override { return port_; }
  bool running() const override {
    return running_.load(std::memory_order_acquire);
  }
  int active_connections() const override {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  const HttpServerOptions options_;
  const HttpHandler handler_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_connections_{0};

  std::thread accept_thread_;
  std::unique_ptr<cold::ThreadPool> pool_;

  // Open connection fds, for force-close at drain timeout.
  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  std::unordered_set<int> open_fds_;
};

cold::Status BlockingServerImpl::Start() {
  if (running_.load()) return cold::Status::FailedPrecondition("already running");

  COLD_ASSIGN_OR_RETURN(listen_fd_,
                        internal::OpenListener(options_.port, &port_));

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  pool_ = std::make_unique<cold::ThreadPool>(options_.num_workers);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  COLD_LOG(kInfo) << "cold_serve listening on 127.0.0.1:" << port_;
  return cold::Status::OK();
}

void BlockingServerImpl::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // Bounded poll so the stopping flag is observed promptly. EINTR is a
    // normal wakeup (signal delivery), not an error — retry.
    int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) {
      COLD_LOG(kWarning) << "accept poll: " << std::strerror(errno);
    }
    if (ready <= 0) continue;
    int fd;
    do {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) continue;
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    Metrics().connections->Increment();

    timeval tv{};
    tv.tv_sec = options_.idle_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    // A slow-READING client must not pin a worker either: bound writes so
    // a full send buffer surfaces as kDeadlineExceeded instead of
    // blocking forever.
    timeval wtv{};
    wtv.tv_sec = options_.write_timeout_seconds > 0
                     ? options_.write_timeout_seconds
                     : options_.idle_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &wtv, sizeof(wtv));
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    // Load shedding: every pool worker is already pinned to a connection,
    // so this one would only sit in the queue. Telling the client to back
    // off now (503 + Retry-After, straight from the accept thread) beats
    // letting it time out behind the pile-up.
    if (options_.max_inflight_requests > 0 &&
        static_cast<size_t>(active_connections_.load(
            std::memory_order_relaxed)) >= options_.max_inflight_requests) {
      Metrics().shed->Increment();
      HttpResponse response =
          HttpResponse::Error(503, "server overloaded, retry later");
      response.headers.emplace("Retry-After", "1");
      WriteHttpResponse(fd, response, /*close_connection=*/true);
      ::close(fd);
      continue;
    }

    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      open_fds_.insert(fd);
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    pool_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void BlockingServerImpl::ServeConnection(int fd) {
  std::string leftover;
  while (!stopping_.load(std::memory_order_acquire)) {
    auto request = ReadHttpRequest(fd, &leftover, options_.limits);
    if (!request.ok()) {
      // Clean EOF / idle timeout: just drop the connection. A malformed
      // request gets a best-effort 400 before closing.
      if (request.status().code() == cold::StatusCode::kInvalidArgument) {
        Metrics().malformed_requests->Increment();
        WriteHttpResponse(
            fd, HttpResponse::Error(400, request.status().message()),
            /*close_connection=*/true);
      } else if (request.status().code() ==
                 cold::StatusCode::kDeadlineExceeded) {
        Metrics().idle_closes->Increment();
      }
      break;
    }
    HttpResponse response = handler_(*request);
    bool keep = request->keep_alive() &&
                !stopping_.load(std::memory_order_acquire);
    if (cold::Status wst = WriteHttpResponse(fd, response, !keep);
        !wst.ok()) {
      if (wst.code() == cold::StatusCode::kDeadlineExceeded) {
        Metrics().write_timeouts->Increment();
      }
      break;
    }
    if (!keep) break;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    open_fds_.erase(fd);
  }
  ::close(fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  conn_cv_.notify_all();
}

void BlockingServerImpl::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Wake workers parked in recv() on idle keep-alive connections:
  // SHUT_RD delivers an immediate EOF to the read side while leaving the
  // write side intact, so a worker mid-handler still sends its response.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RD);
  }

  // Drain: workers finish the request they are on, then observe stopping_
  // and close.
  {
    std::unique_lock<std::mutex> lock(conn_mutex_);
    bool drained = conn_cv_.wait_for(
        lock, std::chrono::seconds(options_.drain_timeout_seconds),
        [this] { return open_fds_.empty(); });
    if (!drained) {
      for (int fd : open_fds_) {
        Metrics().dropped_at_shutdown->Increment();
        ::shutdown(fd, SHUT_RDWR);
      }
    }
  }
  {
    // Wait (briefly) for force-closed connections to unwind as well.
    std::unique_lock<std::mutex> lock(conn_mutex_);
    conn_cv_.wait_for(lock, std::chrono::seconds(2),
                      [this] { return open_fds_.empty(); });
  }
  pool_.reset();  // Joins workers after the queue drains.
  COLD_LOG(kInfo) << "cold_serve stopped";
}

}  // namespace

namespace internal {

cold::Result<int> OpenListener(int port, int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return cold::Status::IOError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    cold::Status st =
        cold::Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 512) != 0) {
    cold::Status st =
        cold::Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

std::unique_ptr<HttpServerImpl> MakeBlockingServerImpl(
    HttpServerOptions options, HttpHandler handler) {
  return std::make_unique<BlockingServerImpl>(std::move(options),
                                              std::move(handler));
}

}  // namespace internal

HttpServer::HttpServer(HttpServerOptions options, HttpHandler handler) {
  if (options.mode == ServerMode::kBlocking) {
    impl_ = internal::MakeBlockingServerImpl(std::move(options),
                                             std::move(handler));
  } else {
    impl_ = internal::MakeEpollServerImpl(std::move(options),
                                          std::move(handler));
  }
}

HttpServer::~HttpServer() { Stop(); }

cold::Status HttpServer::Start() { return impl_->Start(); }
void HttpServer::Stop() { impl_->Stop(); }
int HttpServer::port() const { return impl_->port(); }
bool HttpServer::running() const { return impl_->running(); }
int HttpServer::active_connections() const {
  return impl_->active_connections();
}

}  // namespace cold::serve
