file(REMOVE_RECURSE
  "CMakeFiles/retweet_prediction.dir/retweet_prediction.cpp.o"
  "CMakeFiles/retweet_prediction.dir/retweet_prediction.cpp.o.d"
  "retweet_prediction"
  "retweet_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retweet_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
