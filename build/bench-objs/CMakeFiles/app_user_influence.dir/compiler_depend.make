# Empty compiler generated dependencies file for app_user_influence.
# This may be replaced when dependencies are built.
