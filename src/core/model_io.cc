#include "core/model_io.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace cold::core {

namespace {
constexpr char kMagic[8] = {'C', 'O', 'L', 'D', 'E', 'S', 'T', '1'};

cold::Status WriteArray(std::ofstream& out, const std::vector<double>& data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(double)));
  if (!out.good()) return cold::Status::IOError("short write");
  return cold::Status::OK();
}

cold::Status ReadArray(std::ifstream& in, size_t n,
                       std::vector<double>* data) {
  data->resize(n);
  in.read(reinterpret_cast<char*>(data->data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (in.gcount() != static_cast<std::streamsize>(n * sizeof(double))) {
    return cold::Status::IOError("truncated parameter array");
  }
  return cold::Status::OK();
}

/// A snapshot holding NaN/Inf would poison every downstream prediction
/// (and serve them to clients), so corruption is rejected at load time.
cold::Status CheckFinite(const std::vector<double>& data, const char* name) {
  for (size_t i = 0; i < data.size(); ++i) {
    if (!std::isfinite(data[i])) {
      return cold::Status::IOError("non-finite value in parameter array '" +
                                   std::string(name) + "' at index " +
                                   std::to_string(i));
    }
  }
  return cold::Status::OK();
}
}  // namespace

cold::Status SaveEstimates(const ColdEstimates& estimates,
                           const std::string& path) {
  if (estimates.U < 0 || estimates.C < 1 || estimates.K < 1 ||
      estimates.T < 1 || estimates.V < 1) {
    return cold::Status::InvalidArgument("estimates have invalid dimensions");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return cold::Status::IOError("cannot open for write: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  int32_t dims[5] = {estimates.U, estimates.C, estimates.K, estimates.T,
                     estimates.V};
  out.write(reinterpret_cast<const char*>(dims), sizeof(dims));
  COLD_RETURN_NOT_OK(WriteArray(out, estimates.pi));
  COLD_RETURN_NOT_OK(WriteArray(out, estimates.theta));
  COLD_RETURN_NOT_OK(WriteArray(out, estimates.eta));
  COLD_RETURN_NOT_OK(WriteArray(out, estimates.phi));
  COLD_RETURN_NOT_OK(WriteArray(out, estimates.psi));
  out.flush();
  if (!out.good()) return cold::Status::IOError("flush failed: " + path);
  return cold::Status::OK();
}

cold::Result<ColdEstimates> LoadEstimates(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return cold::Status::IOError("cannot open for read: " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return cold::Status::IOError("bad magic: not a COLD estimates file");
  }
  int32_t dims[5];
  in.read(reinterpret_cast<char*>(dims), sizeof(dims));
  if (in.gcount() != sizeof(dims)) {
    return cold::Status::IOError("truncated header");
  }
  ColdEstimates est;
  est.U = dims[0];
  est.C = dims[1];
  est.K = dims[2];
  est.T = dims[3];
  est.V = dims[4];
  if (est.U < 0 || est.C < 1 || est.K < 1 || est.T < 1 || est.V < 1 ||
      est.U > (1 << 28) || est.C > (1 << 20) || est.K > (1 << 20) ||
      est.T > (1 << 20) || est.V > (1 << 28)) {
    return cold::Status::IOError("implausible dimensions in header");
  }
  COLD_RETURN_NOT_OK(
      ReadArray(in, static_cast<size_t>(est.U) * est.C, &est.pi));
  COLD_RETURN_NOT_OK(
      ReadArray(in, static_cast<size_t>(est.C) * est.K, &est.theta));
  COLD_RETURN_NOT_OK(
      ReadArray(in, static_cast<size_t>(est.C) * est.C, &est.eta));
  COLD_RETURN_NOT_OK(
      ReadArray(in, static_cast<size_t>(est.K) * est.V, &est.phi));
  COLD_RETURN_NOT_OK(
      ReadArray(in, static_cast<size_t>(est.K) * est.C * est.T, &est.psi));
  // Must now be at EOF.
  char extra;
  in.read(&extra, 1);
  if (in.gcount() != 0) {
    return cold::Status::IOError("trailing bytes after parameter arrays");
  }
  COLD_RETURN_NOT_OK(CheckFinite(est.pi, "pi"));
  COLD_RETURN_NOT_OK(CheckFinite(est.theta, "theta"));
  COLD_RETURN_NOT_OK(CheckFinite(est.eta, "eta"));
  COLD_RETURN_NOT_OK(CheckFinite(est.phi, "phi"));
  COLD_RETURN_NOT_OK(CheckFinite(est.psi, "psi"));
  return est;
}

}  // namespace cold::core
