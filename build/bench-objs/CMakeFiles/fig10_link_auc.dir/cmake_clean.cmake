file(REMOVE_RECURSE
  "../bench/fig10_link_auc"
  "../bench/fig10_link_auc.pdb"
  "CMakeFiles/fig10_link_auc.dir/fig10_link_auc.cc.o"
  "CMakeFiles/fig10_link_auc.dir/fig10_link_auc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_link_auc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
