#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace cold::data {

namespace {

// Theme names cycle to label topic core words, so a dump of a recovered
// topic's top words is human-checkable against the planted one.
constexpr const char* kThemes[] = {
    "sports",  "movie",   "music",   "tech",    "food",   "travel",
    "finance", "politics", "fashion", "games",  "health", "auto",
    "science", "books",   "weather", "traffic", "pets",   "art",
    "career",  "family"};
constexpr int kNumThemes = static_cast<int>(std::size(kThemes));

// Cumulative-distribution binary search; cdf must be nondecreasing with
// final value ~1.
int SampleCdf(cold::RandomSampler* sampler, const std::vector<double>& cdf) {
  double u = sampler->Uniform();
  auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  if (it == cdf.end()) return static_cast<int>(cdf.size()) - 1;
  return static_cast<int>(it - cdf.begin());
}

std::vector<double> ToCdf(const std::vector<double>& p) {
  std::vector<double> cdf(p.size());
  double acc = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    acc += p[i];
    cdf[i] = acc;
  }
  return cdf;
}

}  // namespace

int SampleCount(cold::RandomSampler* sampler, double mean, int min_value) {
  double excess = std::max(0.0, mean - min_value);
  if (excess <= 0.0) return min_value;
  double u = sampler->Uniform();
  // Exponential tail with the requested mean excess.
  return min_value + static_cast<int>(-excess * std::log1p(-u));
}

SyntheticSocialGenerator::SyntheticSocialGenerator(SyntheticConfig config)
    : config_(config), sampler_(config.seed, /*stream=*/7) {}

cold::Status SyntheticSocialGenerator::Validate() const {
  if (config_.num_users < 2) {
    return cold::Status::InvalidArgument("need at least 2 users");
  }
  if (config_.num_communities < 1 || config_.num_topics < 1) {
    return cold::Status::InvalidArgument("need >=1 communities and topics");
  }
  if (config_.num_time_slices < 2) {
    return cold::Status::InvalidArgument("need >=2 time slices");
  }
  if (config_.core_words_per_topic < 1) {
    return cold::Status::InvalidArgument("need >=1 core word per topic");
  }
  if (config_.target_retweet_rate <= 0.0 ||
      config_.target_retweet_rate >= 1.0) {
    return cold::Status::InvalidArgument("retweet rate must be in (0,1)");
  }
  return cold::Status::OK();
}

cold::Result<SocialDataset> SyntheticSocialGenerator::Generate() {
  COLD_TRACE_SPAN("synthetic/generate");
  COLD_RETURN_NOT_OK(Validate());
  SocialDataset out;
  DrawGroundTruth(&out);
  GeneratePosts(&out);
  GenerateFollowerGraph(&out);
  GenerateRetweets(&out);
  BuildInteractionNetwork(&out);
  auto& registry = obs::Registry::Global();
  registry.GetGauge("cold/synthetic/users")->Set(out.num_users());
  registry.GetGauge("cold/synthetic/posts")->Set(out.posts.num_posts());
  registry.GetGauge("cold/synthetic/tokens")->Set(
      static_cast<double>(out.posts.num_tokens()));
  registry.GetGauge("cold/synthetic/links")
      ->Set(static_cast<double>(out.interactions.num_edges()));
  registry.GetGauge("cold/synthetic/retweet_tuples")
      ->Set(static_cast<double>(out.retweets.size()));
  COLD_LOG(kInfo) << "synthetic dataset: users=" << out.num_users()
                  << " posts=" << out.posts.num_posts()
                  << " tokens=" << out.posts.num_tokens()
                  << " links=" << out.interactions.num_edges()
                  << " retweet tuples=" << out.retweets.size();
  return out;
}

void SyntheticSocialGenerator::DrawGroundTruth(SocialDataset* out) {
  const int C = config_.num_communities;
  const int K = config_.num_topics;
  const int T = config_.num_time_slices;
  const int U = config_.num_users;
  GroundTruth& truth = out->truth;

  // Vocabulary: K blocks of core words, then shared background words.
  for (int k = 0; k < K; ++k) {
    std::string theme = kThemes[k % kNumThemes];
    if (k >= kNumThemes) theme += std::to_string(k / kNumThemes);
    for (int w = 0; w < config_.core_words_per_topic; ++w) {
      out->vocabulary.Add(theme + "_" + std::to_string(w));
    }
  }
  for (int w = 0; w < config_.background_words; ++w) {
    out->vocabulary.Add("bg_" + std::to_string(w));
  }
  const int V = out->vocabulary.size();

  // phi: core words get `core_mass` via a Dirichlet over the topic's block;
  // background words share the rest with a Zipf profile.
  truth.phi.assign(static_cast<size_t>(K), std::vector<double>(V, 0.0));
  std::vector<double> zipf_cdf =
      cold::RandomSampler::MakeZipfTable(config_.background_words, 1.05);
  for (int k = 0; k < K; ++k) {
    auto core = sampler_.SymmetricDirichlet(0.5, config_.core_words_per_topic);
    int base = k * config_.core_words_per_topic;
    for (int w = 0; w < config_.core_words_per_topic; ++w) {
      truth.phi[k][base + w] = config_.core_mass * core[static_cast<size_t>(w)];
    }
    int bg_base = K * config_.core_words_per_topic;
    double prev = 0.0;
    for (int w = 0; w < config_.background_words; ++w) {
      double mass = zipf_cdf[static_cast<size_t>(w)] - prev;
      prev = zipf_cdf[static_cast<size_t>(w)];
      truth.phi[k][bg_base + w] = (1.0 - config_.core_mass) * mass;
    }
  }

  // theta, pi.
  truth.theta.resize(static_cast<size_t>(C));
  for (int c = 0; c < C; ++c) {
    truth.theta[static_cast<size_t>(c)] =
        sampler_.SymmetricDirichlet(config_.theta_concentration, K);
  }
  truth.pi.resize(static_cast<size_t>(U));
  for (int i = 0; i < U; ++i) {
    truth.pi[static_cast<size_t>(i)] =
        sampler_.SymmetricDirichlet(config_.pi_concentration, C);
  }

  // psi: per (k, c), a uniform floor plus an event burst whose onset and
  // duration depend on the community's interest rank for the topic — the
  // most interested community picks the topic up first and keeps it alive
  // longest — plus an optional minor burst for multimodality.
  truth.psi.assign(
      static_cast<size_t>(K),
      std::vector<std::vector<double>>(static_cast<size_t>(C),
                                       std::vector<double>(T, 0.0)));
  for (int k = 0; k < K; ++k) {
    double event_time = sampler_.Uniform(0.05 * T, 0.85 * T);
    // Interest rank in [0, 1]: 1 = most interested community.
    std::vector<double> interest(static_cast<size_t>(C));
    for (int c = 0; c < C; ++c) {
      interest[static_cast<size_t>(c)] =
          truth.theta[static_cast<size_t>(c)][static_cast<size_t>(k)];
    }
    std::vector<int> order = cold::TopKIndices(interest, C);
    std::vector<double> rank(static_cast<size_t>(C));
    for (int pos = 0; pos < C; ++pos) {
      rank[static_cast<size_t>(order[static_cast<size_t>(pos)])] =
          C > 1 ? 1.0 - static_cast<double>(pos) / (C - 1) : 1.0;
    }

    for (int c = 0; c < C; ++c) {
      auto& profile = truth.psi[static_cast<size_t>(k)][static_cast<size_t>(c)];
      for (int t = 0; t < T; ++t) {
        profile[static_cast<size_t>(t)] = config_.burst_floor / T;
      }
      double r = rank[static_cast<size_t>(c)];
      double center = event_time + config_.lag_slices * (1.0 - r) +
                      sampler_.Uniform(-0.5, 0.5);
      double width = config_.burst_width * (0.6 + r);
      for (int t = 0; t < T; ++t) {
        double dx = (t - center) / width;
        profile[static_cast<size_t>(t)] += std::exp(-0.5 * dx * dx);
      }
      // Minor bursts keep profiles genuinely multimodal (rise-and-fall
      // "many times", §3.3) without displacing the main event peak.
      int minors = (sampler_.Bernoulli(config_.minor_burst_prob) ? 1 : 0) +
                   (sampler_.Bernoulli(config_.minor_burst_prob * 0.5) ? 1 : 0);
      for (int m = 0; m < minors; ++m) {
        double minor_center = sampler_.Uniform(0.0, T);
        double minor_width = sampler_.Uniform(1.0, config_.burst_width + 1.0);
        double minor_height = sampler_.Uniform(0.45, 0.75);
        for (int t = 0; t < T; ++t) {
          double dx = (t - minor_center) / minor_width;
          profile[static_cast<size_t>(t)] +=
              minor_height * std::exp(-0.5 * dx * dx);
        }
      }
      cold::NormalizeInPlace(profile);
    }
  }

  // eta: weak base + strong diagonal + strong cross-community "diffusion
  // path" pairs chosen between communities that share topical interests
  // (homophily), so influential arcs align with interested communities as
  // in Fig 5.
  truth.eta.assign(static_cast<size_t>(C), std::vector<double>(C, 0.0));
  for (int c = 0; c < C; ++c) {
    for (int c2 = 0; c2 < C; ++c2) {
      truth.eta[static_cast<size_t>(c)][static_cast<size_t>(c2)] =
          config_.eta_base * sampler_.Uniform(0.5, 1.5);
    }
    truth.eta[static_cast<size_t>(c)][static_cast<size_t>(c)] =
        config_.eta_within * sampler_.Uniform(0.7, 1.3);
  }
  for (int p = 0; p < config_.num_diffusion_paths; ++p) {
    int c, c2;
    if (p % 2 == 0) {
      // Interest-aligned path: both ends drawn by their interest in a
      // random topic (topical homophily; gives Fig 5 its story).
      int k = static_cast<int>(sampler_.UniformInt(static_cast<uint32_t>(K)));
      std::vector<double> interest(static_cast<size_t>(C));
      for (int cc = 0; cc < C; ++cc) {
        interest[static_cast<size_t>(cc)] =
            truth.theta[static_cast<size_t>(cc)][static_cast<size_t>(k)];
      }
      c = sampler_.Categorical(interest);
      c2 = sampler_.Categorical(interest);
    } else {
      // Unaligned path: disassortative structure that only a full
      // inter-community influence matrix (not a per-factor link rate)
      // can represent.
      c = static_cast<int>(sampler_.UniformInt(static_cast<uint32_t>(C)));
      c2 = static_cast<int>(sampler_.UniformInt(static_cast<uint32_t>(C)));
    }
    if (c == c2) continue;
    truth.eta[static_cast<size_t>(c)][static_cast<size_t>(c2)] =
        config_.eta_path * sampler_.Uniform(0.7, 1.3);
  }
  for (auto& row : truth.eta) {
    for (double& v : row) v = std::min(v, 0.95);
  }

  // Per-community weighted-user sampling tables (weights = memberships).
  community_user_cdf_.assign(static_cast<size_t>(C), {});
  for (int c = 0; c < C; ++c) {
    std::vector<double> weights(static_cast<size_t>(U));
    for (int i = 0; i < U; ++i) {
      weights[static_cast<size_t>(i)] =
          truth.pi[static_cast<size_t>(i)][static_cast<size_t>(c)];
    }
    cold::NormalizeInPlace(weights);
    community_user_cdf_[static_cast<size_t>(c)] = ToCdf(weights);
  }
}

void SyntheticSocialGenerator::GeneratePosts(SocialDataset* out) {
  const int K = config_.num_topics;
  GroundTruth& truth = out->truth;

  std::vector<std::vector<double>> phi_cdf(static_cast<size_t>(K));
  for (int k = 0; k < K; ++k) {
    phi_cdf[static_cast<size_t>(k)] = ToCdf(truth.phi[static_cast<size_t>(k)]);
  }
  std::vector<std::vector<double>> theta_cdf;
  for (const auto& row : truth.theta) theta_cdf.push_back(ToCdf(row));
  std::vector<std::vector<double>> pi_cdf;
  for (const auto& row : truth.pi) pi_cdf.push_back(ToCdf(row));

  std::vector<text::WordId> words;
  for (int i = 0; i < config_.num_users; ++i) {
    int num_posts = SampleCount(&sampler_, config_.posts_per_user, 1);
    for (int j = 0; j < num_posts; ++j) {
      int c = SampleCdf(&sampler_, pi_cdf[static_cast<size_t>(i)]);
      int k = SampleCdf(&sampler_, theta_cdf[static_cast<size_t>(c)]);
      const auto& psi_kc =
          truth.psi[static_cast<size_t>(k)][static_cast<size_t>(c)];
      int t = sampler_.Categorical(psi_kc, 1.0);
      int len = SampleCount(&sampler_, config_.words_per_post, 3);
      words.clear();
      for (int l = 0; l < len; ++l) {
        words.push_back(static_cast<text::WordId>(
            SampleCdf(&sampler_, phi_cdf[static_cast<size_t>(k)])));
      }
      out->posts.Add(static_cast<UserId>(i), static_cast<TimeSlice>(t), words);
      truth.post_community.push_back(c);
      truth.post_topic.push_back(k);
    }
  }
  out->posts.Finalize(config_.num_users, config_.num_time_slices);
}

void SyntheticSocialGenerator::GenerateFollowerGraph(SocialDataset* out) {
  const int C = config_.num_communities;
  const GroundTruth& truth = out->truth;

  // Column-normalized eta: a user engaging community c' follows members of
  // community c with probability proportional to eta_cc' (they follow the
  // communities that influence theirs).
  std::vector<std::vector<double>> follow_cdf(static_cast<size_t>(C));
  for (int c2 = 0; c2 < C; ++c2) {
    std::vector<double> col(static_cast<size_t>(C));
    for (int c = 0; c < C; ++c) {
      col[static_cast<size_t>(c)] =
          truth.eta[static_cast<size_t>(c)][static_cast<size_t>(c2)];
    }
    cold::NormalizeInPlace(col);
    follow_cdf[static_cast<size_t>(c2)] = ToCdf(col);
  }
  std::vector<std::vector<double>> pi_cdf;
  for (const auto& row : truth.pi) pi_cdf.push_back(ToCdf(row));

  graph::Digraph::Builder builder;
  for (int i = 0; i < config_.num_users; ++i) {
    std::unordered_set<int> seen;
    int num_follows = SampleCount(&sampler_, config_.follows_per_user, 2);
    for (int f = 0; f < num_follows; ++f) {
      int c2 = SampleCdf(&sampler_, pi_cdf[static_cast<size_t>(i)]);
      int c = SampleCdf(&sampler_, follow_cdf[static_cast<size_t>(c2)]);
      int target = SampleCdf(&sampler_, community_user_cdf_[static_cast<size_t>(c)]);
      if (target == i || !seen.insert(target).second) continue;
      // Edge (followee -> follower): i sees target's posts.
      (void)builder.AddEdge(static_cast<graph::NodeId>(target),
                            static_cast<graph::NodeId>(i));
    }
  }
  out->followers = std::move(builder).Build(config_.num_users, /*dedupe=*/true);
}

double SyntheticSocialGenerator::RawDiffusionProbability(
    const GroundTruth& truth, UserId i, UserId follower, int k) const {
  const int C = config_.num_communities;
  const auto& pi_i = truth.pi[static_cast<size_t>(i)];
  const auto& pi_f = truth.pi[static_cast<size_t>(follower)];
  const double mix = config_.community_mix;
  const double k2 = static_cast<double>(config_.num_topics) *
                    static_cast<double>(config_.num_topics);
  double p = 0.0;
  for (int c = 0; c < C; ++c) {
    double theta_ck =
        truth.theta[static_cast<size_t>(c)][static_cast<size_t>(k)];
    for (int c2 = 0; c2 < C; ++c2) {
      // Topic affinity normalized so a uniform theta contributes 1, making
      // `mix` a true balance knob.
      double affinity =
          k2 * theta_ck *
          truth.theta[static_cast<size_t>(c2)][static_cast<size_t>(k)];
      double zeta = truth.eta[static_cast<size_t>(c)][static_cast<size_t>(c2)] *
                    (mix + (1.0 - mix) * affinity);
      p += pi_i[static_cast<size_t>(c)] * pi_f[static_cast<size_t>(c2)] * zeta;
    }
  }
  return p;
}

void SyntheticSocialGenerator::GenerateRetweets(SocialDataset* out) {
  const GroundTruth& truth = out->truth;
  const int num_posts = out->posts.num_posts();

  // Pass 1: raw exposure probabilities for calibration.
  std::vector<std::vector<double>> raw(static_cast<size_t>(num_posts));
  double total = 0.0;
  int64_t count = 0;
  for (PostId d = 0; d < num_posts; ++d) {
    UserId author = out->posts.author(d);
    int k = truth.post_topic[static_cast<size_t>(d)];
    auto follower_edges = out->followers.out_edges(author);
    raw[static_cast<size_t>(d)].reserve(follower_edges.size());
    for (graph::EdgeId e : follower_edges) {
      UserId f = static_cast<UserId>(out->followers.edge(e).dst);
      double p = RawDiffusionProbability(truth, author, f, k);
      raw[static_cast<size_t>(d)].push_back(p);
      total += p;
      ++count;
    }
  }
  double mean = count > 0 ? total / static_cast<double>(count) : 0.0;
  double gain = mean > 0.0 ? config_.target_retweet_rate / mean : 0.0;

  // Pass 2: Bernoulli outcomes.
  for (PostId d = 0; d < num_posts; ++d) {
    auto follower_edges = out->followers.out_edges(out->posts.author(d));
    if (follower_edges.empty()) continue;
    RetweetTuple tuple;
    tuple.author = out->posts.author(d);
    tuple.post = d;
    for (size_t fi = 0; fi < follower_edges.size(); ++fi) {
      UserId f =
          static_cast<UserId>(out->followers.edge(follower_edges[fi]).dst);
      if (!sampler_.Bernoulli(config_.attention_prob)) continue;  // unseen
      double p = std::min(0.95, raw[static_cast<size_t>(d)][fi] * gain);
      if (sampler_.Bernoulli(p)) {
        tuple.retweeters.push_back(f);
      } else {
        tuple.ignorers.push_back(f);
      }
    }
    if (tuple.retweeters.empty() && tuple.ignorers.empty()) continue;
    out->retweets.push_back(std::move(tuple));
  }
}

void SyntheticSocialGenerator::BuildInteractionNetwork(SocialDataset* out) {
  graph::Digraph::Builder builder;
  for (const RetweetTuple& tuple : out->retweets) {
    for (UserId f : tuple.retweeters) {
      (void)builder.AddEdge(static_cast<graph::NodeId>(tuple.author),
                            static_cast<graph::NodeId>(f));
    }
  }
  out->interactions =
      std::move(builder).Build(config_.num_users, /*dedupe=*/true);
}

}  // namespace cold::data
