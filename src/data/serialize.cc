#include "data/serialize.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/fileio.h"

namespace cold::data {

namespace {

cold::Status OpenForRead(const std::string& path, std::ifstream* in) {
  in->open(path);
  if (!in->is_open()) {
    return cold::Status::IOError("cannot open for read: " + path);
  }
  return cold::Status::OK();
}

void WriteGraph(std::ostream& out, const graph::Digraph& g) {
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    out << g.edge(e).src << '\t' << g.edge(e).dst << '\n';
  }
}

cold::Result<graph::Digraph> ReadGraph(const std::string& path,
                                       int num_nodes) {
  std::ifstream in;
  COLD_RETURN_NOT_OK(OpenForRead(path, &in));
  graph::Digraph::Builder builder;
  graph::NodeId src, dst;
  while (in >> src >> dst) {
    COLD_RETURN_NOT_OK(builder.AddEdge(src, dst));
  }
  return std::move(builder).Build(num_nodes);
}

void WriteIdList(std::ostream& out, const std::vector<UserId>& ids) {
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << ',';
    out << ids[i];
  }
}

std::vector<UserId> ParseIdList(const std::string& s) {
  std::vector<UserId> ids;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) ids.push_back(static_cast<UserId>(std::stol(item)));
  }
  return ids;
}

}  // namespace

cold::Status SaveDataset(const SocialDataset& dataset,
                         const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return cold::Status::IOError("mkdir failed: " + dir);

  // Each file is rendered in memory and written atomically (tmp + fsync +
  // rename), so a crash mid-save never leaves a partially written dataset
  // behind an otherwise valid-looking directory.
  {
    std::ostringstream out;
    for (text::WordId w = 0; w < dataset.vocabulary.size(); ++w) {
      out << dataset.vocabulary.word(w) << '\n';
    }
    COLD_RETURN_NOT_OK(AtomicWriteFile(dir + "/vocab.tsv", out.str()));
  }
  {
    std::ostringstream out;
    for (PostId d = 0; d < dataset.posts.num_posts(); ++d) {
      out << dataset.posts.author(d) << '\t' << dataset.posts.time(d) << '\t';
      auto words = dataset.posts.words(d);
      for (size_t l = 0; l < words.size(); ++l) {
        if (l > 0) out << ' ';
        out << words[l];
      }
      out << '\n';
    }
    COLD_RETURN_NOT_OK(AtomicWriteFile(dir + "/posts.tsv", out.str()));
  }
  {
    std::ostringstream out;
    WriteGraph(out, dataset.followers);
    COLD_RETURN_NOT_OK(AtomicWriteFile(dir + "/followers.tsv", out.str()));
  }
  {
    std::ostringstream out;
    WriteGraph(out, dataset.interactions);
    COLD_RETURN_NOT_OK(AtomicWriteFile(dir + "/links.tsv", out.str()));
  }
  {
    std::ostringstream out;
    for (const RetweetTuple& t : dataset.retweets) {
      out << t.author << '\t' << t.post << "\tr:";
      WriteIdList(out, t.retweeters);
      out << "\tn:";
      WriteIdList(out, t.ignorers);
      out << '\n';
    }
    COLD_RETURN_NOT_OK(AtomicWriteFile(dir + "/retweets.tsv", out.str()));
  }
  return cold::Status::OK();
}

cold::Result<SocialDataset> LoadDataset(const std::string& dir) {
  SocialDataset dataset;
  {
    std::ifstream in;
    COLD_RETURN_NOT_OK(OpenForRead(dir + "/vocab.tsv", &in));
    std::string word;
    while (std::getline(in, word)) {
      if (!word.empty()) dataset.vocabulary.Add(word);
    }
  }
  {
    std::ifstream in;
    COLD_RETURN_NOT_OK(OpenForRead(dir + "/posts.tsv", &in));
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::stringstream ss(line);
      UserId author;
      TimeSlice time;
      ss >> author >> time;
      std::vector<text::WordId> words;
      text::WordId w;
      while (ss >> w) words.push_back(w);
      dataset.posts.Add(author, time, words);
    }
    dataset.posts.Finalize();
  }
  {
    COLD_ASSIGN_OR_RETURN(dataset.followers,
                          ReadGraph(dir + "/followers.tsv",
                                    dataset.posts.num_users()));
    COLD_ASSIGN_OR_RETURN(dataset.interactions,
                          ReadGraph(dir + "/links.tsv",
                                    dataset.posts.num_users()));
  }
  {
    std::ifstream in;
    COLD_RETURN_NOT_OK(OpenForRead(dir + "/retweets.tsv", &in));
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::stringstream ss(line);
      RetweetTuple tuple;
      std::string rlist, nlist;
      ss >> tuple.author >> tuple.post >> rlist >> nlist;
      if (rlist.rfind("r:", 0) != 0 || nlist.rfind("n:", 0) != 0) {
        return cold::Status::IOError("malformed retweets.tsv line: " + line);
      }
      tuple.retweeters = ParseIdList(rlist.substr(2));
      tuple.ignorers = ParseIdList(nlist.substr(2));
      dataset.retweets.push_back(std::move(tuple));
    }
  }
  return dataset;
}

}  // namespace cold::data
