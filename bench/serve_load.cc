// serve_load — the serving-core load benchmark behind BENCH_serve.json
// and the bench_regression gate (DESIGN.md §11, §14).
//
// Starts the real ModelService + HttpServer in-process over a COLDARN1
// arena snapshot and drives it with a poll()-multiplexed non-blocking
// client: N keep-alive connections issuing single-candidate /v1/diffusion
// requests back to back. Scenarios sweep connection count for both
// serving cores (epoll event loop vs the legacy thread-per-connection
// pool, workers sized to the connection count), then two targeted runs:
//
//   reload — epoll load with /admin-style hot reloads every 50ms; reports
//            sustained reload rate and the swap-stall quantiles from
//            cold/serve/reload_swap_seconds (the O(1) pointer-swap claim).
//   shed   — offered connections over max_inflight; reports the shed rate
//            and the surviving throughput.
//
// Emits: requests_per_sec + p50/p99/p999 latency per scenario (the
// *_per_sec keys are what bench_compare gates against
// bench/baselines/serve.json), epoll-vs-blocking speedup at the highest
// connection count, reload stall, shed rate. Latencies are also observed
// into the cold/bench/serve_latency_seconds histogram family (labels
// mode/connections) so COLD_BENCH_METRICS snapshots carry them.
//
// Usage: serve_load [--smoke] [--out BENCH_serve.json]
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common.h"
#include "core/model_io.h"
#include "core/predictor.h"
#include "serve/http_server.h"
#include "serve/model_service.h"

namespace cold::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct LoadOptions {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
};

core::ColdEstimates RandomEstimates(uint64_t seed, int U, int C, int K, int T,
                                    int V) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  core::ColdEstimates est;
  est.U = U;
  est.C = C;
  est.K = K;
  est.T = T;
  est.V = V;
  auto fill_rows = [&](std::vector<double>* out, int rows, int cols) {
    out->resize(static_cast<size_t>(rows) * static_cast<size_t>(cols));
    for (int r = 0; r < rows; ++r) {
      double sum = 0.0;
      for (int c = 0; c < cols; ++c) {
        double v = 0.05 + uniform(rng);
        (*out)[static_cast<size_t>(r) * cols + c] = v;
        sum += v;
      }
      for (int c = 0; c < cols; ++c) {
        (*out)[static_cast<size_t>(r) * cols + c] /= sum;
      }
    }
  };
  fill_rows(&est.pi, U, C);
  fill_rows(&est.theta, C, K);
  fill_rows(&est.eta, C, C);
  fill_rows(&est.phi, K, V);
  fill_rows(&est.psi, K * C, T);
  return est;
}

/// Pre-serialized keep-alive request pool: distinct (publisher, candidate,
/// words) tuples so the posterior cache sees realistic repeat traffic
/// rather than one key.
std::vector<std::string> BuildRequestPool(int U, int V, int pool_size) {
  std::mt19937_64 rng(7);
  std::vector<std::string> pool;
  pool.reserve(static_cast<size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i) {
    int publisher = static_cast<int>(rng() % static_cast<uint64_t>(U));
    int candidate = static_cast<int>(rng() % static_cast<uint64_t>(U));
    std::string body = "{\"publisher\":" + std::to_string(publisher) +
                       ",\"candidate\":" + std::to_string(candidate) +
                       ",\"words\":[";
    for (int w = 0; w < 4; ++w) {
      if (w > 0) body += ',';
      body += std::to_string(rng() % static_cast<uint64_t>(V));
    }
    body += "]}";
    std::string request = "POST /v1/diffusion HTTP/1.1\r\nHost: l\r\n";
    request += "Content-Type: application/json\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\n\r\n" + body;
    pool.push_back(std::move(request));
  }
  return pool;
}

struct ScenarioResult {
  std::string name;
  std::string mode;
  int connections = 0;
  double duration_seconds = 0.0;
  int64_t completed = 0;
  int64_t errors = 0;       // Non-200 responses (503s under shedding).
  int64_t reconnects = 0;   // Server-closed connections reopened.
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

class LoadClient {
 public:
  LoadClient(int port, const std::vector<std::string>* pool)
      : port_(port), pool_(pool) {}

  /// Runs `connections` keep-alive request loops for `seconds`, calling
  /// `tick` (may be empty) once per poll round — the reload scenario's
  /// hook. Returns latencies in milliseconds.
  ScenarioResult Run(int connections, double seconds,
                     const std::function<void()>& tick = {}) {
    std::vector<Conn> conns(static_cast<size_t>(connections));
    for (Conn& c : conns) Open(&c);
    latencies_.clear();
    latencies_.reserve(1 << 16);
    completed_ = errors_ = reconnects_ = 0;

    const Clock::time_point start = Clock::now();
    const Clock::time_point deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(seconds));
    std::vector<pollfd> pfds(conns.size());
    while (Clock::now() < deadline) {
      if (tick) tick();
      for (size_t i = 0; i < conns.size(); ++i) {
        pfds[i].fd = conns[i].fd;
        pfds[i].events = conns[i].WantWrite() ? POLLOUT : POLLIN;
        pfds[i].revents = 0;
      }
      int ready = ::poll(pfds.data(), pfds.size(), 50);
      if (ready < 0 && errno != EINTR) break;
      for (size_t i = 0; i < conns.size(); ++i) {
        if (pfds[i].revents == 0) continue;
        if (!Step(&conns[i], pfds[i].revents)) {
          // Server closed (shed 503s close; drains close): reconnect and
          // keep offering load.
          ::close(conns[i].fd);
          conns[i] = Conn();
          ++reconnects_;
          Open(&conns[i]);
        }
      }
    }
    for (Conn& c : conns) {
      if (c.fd >= 0) ::close(c.fd);
    }

    ScenarioResult result;
    result.connections = connections;
    result.duration_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.completed = completed_;
    result.errors = errors_;
    result.reconnects = reconnects_;
    result.requests_per_sec =
        static_cast<double>(completed_) / result.duration_seconds;
    std::sort(latencies_.begin(), latencies_.end());
    result.p50_ms = Percentile(0.50);
    result.p99_ms = Percentile(0.99);
    result.p999_ms = Percentile(0.999);
    return result;
  }

 private:
  struct Conn {
    int fd = -1;
    bool connecting = false;
    size_t out_off = 0;      // Progress through the current request.
    std::string in;          // Accumulated response bytes.
    size_t next_request = 0;
    Clock::time_point sent_at;
    bool awaiting_response = false;

    bool WantWrite() const { return connecting || !awaiting_response; }
  };

  void Open(Conn* c) {
    c->fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (c->fd < 0) return;
    int flags = ::fcntl(c->fd, F_GETFL, 0);
    ::fcntl(c->fd, F_SETFL, flags | O_NONBLOCK);
    int one = 1;
    ::setsockopt(c->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int rc = ::connect(c->fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    c->connecting = rc != 0 && errno == EINPROGRESS;
    c->next_request = next_seed_++ % pool_->size();
  }

  /// Advances one connection; false means the connection died.
  bool Step(Conn* c, short revents) {
    if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && !c->connecting) {
      return false;
    }
    if (c->connecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(c->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        return false;
      }
      c->connecting = false;
    }
    if (!c->awaiting_response) {
      const std::string& request = (*pool_)[c->next_request];
      if (c->out_off == 0) c->sent_at = Clock::now();
      while (c->out_off < request.size()) {
        ssize_t n = ::send(c->fd, request.data() + c->out_off,
                           request.size() - c->out_off, MSG_NOSIGNAL);
        if (n > 0) {
          c->out_off += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      c->out_off = 0;
      c->awaiting_response = true;
    }
    // Read until the response (headers + Content-Length body) is whole.
    char chunk[8192];
    for (;;) {
      ssize_t n = ::recv(c->fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        c->in.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) return false;  // Server closed mid-response or idle.
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    size_t header_end = c->in.find("\r\n\r\n");
    if (header_end == std::string::npos) return true;
    size_t body_len = 0;
    {
      // Lowercased server emits "Content-Length:"; match either case.
      size_t pos = c->in.find("Content-Length:");
      if (pos == std::string::npos) pos = c->in.find("content-length:");
      if (pos != std::string::npos && pos < header_end) {
        body_len = static_cast<size_t>(
            std::strtol(c->in.c_str() + pos + 15, nullptr, 10));
      }
    }
    const size_t total = header_end + 4 + body_len;
    if (c->in.size() < total) return true;

    const bool ok = c->in.compare(9, 3, "200") == 0;
    double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - c->sent_at)
            .count();
    latencies_.push_back(ms);
    ++completed_;
    if (!ok) ++errors_;
    if (latency_hist_ != nullptr) latency_hist_->Observe(ms / 1000.0);
    c->in.erase(0, total);
    c->awaiting_response = false;
    c->next_request = next_seed_++ % pool_->size();
    return true;
  }

  double Percentile(double q) const {
    if (latencies_.empty()) return 0.0;
    size_t idx = static_cast<size_t>(q * (latencies_.size() - 1));
    return latencies_[idx];
  }

 public:
  void set_latency_histogram(obs::Histogram* hist) { latency_hist_ = hist; }

 private:
  int port_;
  const std::vector<std::string>* pool_;
  std::vector<double> latencies_;
  int64_t completed_ = 0;
  int64_t errors_ = 0;
  int64_t reconnects_ = 0;
  size_t next_seed_ = 0;
  obs::Histogram* latency_hist_ = nullptr;
};

serve::Json ScenarioJson(const ScenarioResult& r) {
  serve::Json obj = serve::Json::MakeObject();
  obj.Set("name", r.name);
  obj.Set("mode", r.mode);
  obj.Set("connections", r.connections);
  obj.Set("duration_seconds", r.duration_seconds);
  obj.Set("requests", r.completed);
  obj.Set("errors", r.errors);
  obj.Set("reconnects", r.reconnects);
  obj.Set("requests_per_sec", r.requests_per_sec);
  obj.Set("p50_ms", r.p50_ms);
  obj.Set("p99_ms", r.p99_ms);
  obj.Set("p999_ms", r.p999_ms);
  return obj;
}

ScenarioResult RunScenario(const std::string& name, serve::ModelService* service,
                           serve::ServerMode mode, int connections,
                           double seconds,
                           const std::vector<std::string>* pool,
                           size_t max_inflight = 0,
                           const std::function<void()>& tick = {}) {
  serve::HttpServerOptions options;
  options.mode = mode;
  // Blocking mode needs a worker per concurrent connection to avoid
  // head-of-line queueing at the accept path; the event loop handles any
  // connection count with the default reactor sizing.
  options.num_workers = static_cast<size_t>(connections);
  options.idle_timeout_seconds = 30;
  options.max_inflight_requests = max_inflight;
  serve::HttpServer server(options, [service](const serve::HttpRequest& req) {
    return service->Handle(req);
  });
  if (auto st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }

  LoadClient client(server.port(), pool);
  obs::Labels labels{{"mode", mode == serve::ServerMode::kEpoll ? "epoll"
                                                                : "blocking"},
                     {"connections", std::to_string(connections)}};
  client.set_latency_histogram(obs::Registry::Global().GetHistogram(
      "cold/bench/serve_latency_seconds", labels));
  ScenarioResult result = client.Run(connections, seconds, tick);
  result.name = name;
  result.mode = mode == serve::ServerMode::kEpoll ? "epoll" : "blocking";
  server.Stop();
  std::printf(
      "%-22s %-8s conns=%-4d  %9.0f req/s  p50 %6.2fms  p99 %6.2fms  "
      "p999 %6.2fms  errors=%lld\n",
      result.name.c_str(), result.mode.c_str(), connections,
      result.requests_per_sec, result.p50_ms, result.p99_ms, result.p999_ms,
      static_cast<long long>(result.errors));
  return result;
}

/// p-quantile of a live registry histogram, in seconds (NaN-safe: 0 when
/// empty).
double HistQuantile(const char* name, double q) {
  obs::Histogram* hist = obs::Registry::Global().GetHistogram(name);
  double value = obs::EstimateQuantile(hist->upper_bounds(),
                                       hist->bucket_counts(), q);
  return value == value ? value : 0.0;
}

int Run(const LoadOptions& options) {
  QuietLogs();
  const bool smoke = options.smoke;

  // Model scale: big enough that Eq. (5) is real work, small enough that
  // a smoke run stays under a second of setup on one core.
  const int U = smoke ? 200 : 1500;
  const int C = 8;
  const int K = smoke ? 8 : 12;
  const int T = smoke ? 8 : 16;
  const int V = smoke ? 500 : 4000;
  core::ColdEstimates estimates = RandomEstimates(11, U, C, K, T, V);

  // Serve from the COLDARN1 arena — the bench measures the production
  // zero-copy path, and the reload scenario needs the file anyway.
  std::string arena_path = "/tmp/cold_serve_load_" +
                           std::to_string(::getpid()) + ".arena";
  if (auto st = core::SaveArenaSnapshot(estimates, 5, arena_path); !st.ok()) {
    std::fprintf(stderr, "arena save failed: %s\n", st.ToString().c_str());
    return 1;
  }

  serve::ModelServiceOptions service_options;
  service_options.model_path = arena_path;
  service_options.num_replicas = 2;
  service_options.posterior_cache_capacity = 4096;
  service_options.cache_shards = 8;
  // The load is single-candidate diffusion — always inline — so keep the
  // batch thread off; one fewer thread on the bench core.
  service_options.batching_enabled = false;
  serve::ModelService service(service_options);
  if (auto st = service.LoadFromFile(arena_path); !st.ok()) {
    std::fprintf(stderr, "arena load failed: %s\n", st.ToString().c_str());
    ::unlink(arena_path.c_str());
    return 1;
  }

  std::vector<std::string> pool = BuildRequestPool(U, V, 64);
  const double seconds = smoke ? 0.3 : 1.2;
  const std::vector<int> conn_counts =
      smoke ? std::vector<int>{4, 16} : std::vector<int>{8, 64, 512};

  PrintHeader("serve_load: epoll vs blocking");
  std::vector<ScenarioResult> scenarios;
  for (int conns : conn_counts) {
    scenarios.push_back(RunScenario("sweep", &service,
                                    serve::ServerMode::kEpoll, conns, seconds,
                                    &pool));
    scenarios.push_back(RunScenario("sweep", &service,
                                    serve::ServerMode::kBlocking, conns,
                                    seconds, &pool));
  }
  const ScenarioResult& epoll_top = scenarios[scenarios.size() - 2];
  const ScenarioResult& blocking_top = scenarios.back();
  const double speedup =
      blocking_top.requests_per_sec > 0.0
          ? epoll_top.requests_per_sec / blocking_top.requests_per_sec
          : 0.0;

  PrintHeader("serve_load: hot reload under load");
  Clock::time_point next_reload = Clock::now();
  int64_t reloads = 0;
  const Clock::time_point reload_start = Clock::now();
  ScenarioResult reload_run = RunScenario(
      "reload", &service, serve::ServerMode::kEpoll,
      smoke ? 4 : 64, seconds, &pool, 0, [&] {
        if (Clock::now() < next_reload) return;
        next_reload = Clock::now() + std::chrono::milliseconds(50);
        if (service.LoadFromFile(arena_path).ok()) ++reloads;
      });
  const double reload_elapsed =
      std::chrono::duration<double>(Clock::now() - reload_start).count();
  const double swap_p50_us =
      HistQuantile("cold/serve/reload_swap_seconds", 0.50) * 1e6;
  const double swap_p99_us =
      HistQuantile("cold/serve/reload_swap_seconds", 0.99) * 1e6;
  std::printf("reloads=%lld  swap stall p50 %.1fus  p99 %.1fus\n",
              static_cast<long long>(reloads), swap_p50_us, swap_p99_us);

  PrintHeader("serve_load: load shedding");
  // Shed rate comes from the server's own counter: shed connections are
  // usually closed before the client finishes parsing the 503, so the
  // client-side error count undercounts.
  obs::Counter* shed_counter =
      obs::Registry::Global().GetCounter("cold/serve/shed_total");
  const int64_t sheds_before = shed_counter->Value();
  const int shed_conns = smoke ? 8 : 64;
  ScenarioResult shed_run =
      RunScenario("shed", &service, serve::ServerMode::kEpoll, shed_conns,
                  seconds, &pool, static_cast<size_t>(shed_conns) / 4);
  const int64_t sheds = shed_counter->Value() - sheds_before;
  const double offered =
      static_cast<double>(shed_run.completed) + static_cast<double>(sheds);
  const double shed_rate =
      offered > 0.0 ? static_cast<double>(sheds) / offered : 0.0;
  std::printf("shed rate %.3f (%lld shed of %.0f offered)\n", shed_rate,
              static_cast<long long>(sheds), offered);

  ::unlink(arena_path.c_str());

  serve::Json root = serve::Json::MakeObject();
  root.Set("bench", "serve_load");
  serve::Json model = serve::Json::MakeObject();
  model.Set("users", U);
  model.Set("vocab", V);
  model.Set("replicas", 2);
  root.Set("model", std::move(model));
  serve::Json arr = serve::Json::MakeArray();
  for (const ScenarioResult& r : scenarios) arr.Append(ScenarioJson(r));
  root.Set("scenarios", std::move(arr));
  serve::Json versus = serve::Json::MakeObject();
  versus.Set("connections", epoll_top.connections);
  versus.Set("epoll_requests_per_sec", epoll_top.requests_per_sec);
  versus.Set("blocking_requests_per_sec", blocking_top.requests_per_sec);
  versus.Set("speedup", speedup);
  root.Set("epoll_vs_blocking", std::move(versus));
  serve::Json reload_obj = ScenarioJson(reload_run);
  reload_obj.Set("reloads", reloads);
  reload_obj.Set("reloads_per_sec",
                 reload_elapsed > 0.0
                     ? static_cast<double>(reloads) / reload_elapsed
                     : 0.0);
  reload_obj.Set("swap_stall_p50_us", swap_p50_us);
  reload_obj.Set("swap_stall_p99_us", swap_p99_us);
  root.Set("reload", std::move(reload_obj));
  serve::Json shed_obj = ScenarioJson(shed_run);
  shed_obj.Set("sheds", sheds);
  shed_obj.Set("shed_rate", shed_rate);
  root.Set("shed", std::move(shed_obj));

  if (!WriteJsonFile(root, options.out_path)) return 1;
  std::printf("results written to %s\n", options.out_path.c_str());

  if (smoke) {
    // Validation pass: reparse and sanity-check the emitted numbers.
    auto reparsed = LoadJsonFile(options.out_path);
    if (!reparsed.ok()) {
      std::fprintf(stderr, "smoke: %s\n",
                   reparsed.status().ToString().c_str());
      return 1;
    }
    const serve::Json* scen = reparsed->Find("scenarios");
    if (scen == nullptr || !scen->is_array() || scen->as_array().empty()) {
      std::fprintf(stderr, "smoke: no scenarios emitted\n");
      return 1;
    }
    for (const serve::Json& s : scen->as_array()) {
      const serve::Json* rps = s.Find("requests_per_sec");
      if (rps == nullptr || !rps->is_number() || rps->as_number() <= 0.0) {
        std::fprintf(stderr, "smoke: scenario with no throughput\n");
        return 1;
      }
    }
    // The headline claim: a hot reload stalls serving for microseconds,
    // not milliseconds. 1ms bound with slack for a loaded smoke box.
    const serve::Json* reload_node = reparsed->Find("reload");
    const serve::Json* stall =
        reload_node != nullptr ? reload_node->Find("swap_stall_p99_us")
                               : nullptr;
    if (stall == nullptr || !stall->is_number() ||
        stall->as_number() >= 1000.0) {
      std::fprintf(stderr, "smoke: reload swap stall p99 not under 1ms\n");
      return 1;
    }
    std::printf("smoke validation passed\n");
  }
  DumpTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cold::bench

int main(int argc, char** argv) {
  cold::bench::LoadOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  return cold::bench::Run(options);
}
