// Ablation for §5.2's TopComm truncation: |TopComm(i)| trades prediction
// accuracy against online cost. The paper fixes 5, citing [34] (users are
// active in few communities). This bench sweeps the size and reports
// diffusion AUC plus measured per-triple prediction latency.
#include "common.h"
#include "core/predictor.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Ablation: |TopComm| sweep (accuracy vs online cost)");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  data::RetweetSplit split = data::SplitRetweets(dataset, 0.2, 109, 0);
  core::ColdEstimates est = bench::TrainCold(
      bench::BenchColdConfig(), dataset.posts, &split.train_interactions);

  // Pre-draw query triples for the latency measurement.
  std::vector<std::tuple<text::UserId, text::UserId, text::PostId>> queries;
  for (const data::RetweetTuple& tuple : split.test) {
    for (text::UserId u : tuple.retweeters) {
      queries.emplace_back(tuple.author, u, tuple.post);
    }
    for (text::UserId u : tuple.ignorers) {
      queries.emplace_back(tuple.author, u, tuple.post);
    }
    if (queries.size() >= 2000) break;
  }

  std::printf("%-10s %12s %16s\n", "|TopComm|", "diff AUC", "latency (us)");
  for (int size : {1, 2, 3, 5, 8}) {
    core::ColdPredictor predictor(est, size);
    double auc = bench::DiffusionAuc(
        split.test, dataset.posts, [&](int a, int b, auto words) {
          return predictor.DiffusionProbability(a, b, words);
        });
    Stopwatch watch;
    double sink = 0.0;
    const int reps = 5;
    for (int r = 0; r < reps; ++r) {
      for (const auto& [a, b, d] : queries) {
        sink += predictor.DiffusionProbability(a, b, dataset.posts.words(d));
      }
    }
    double micros = watch.ElapsedSeconds() * 1e6 /
                    (static_cast<double>(queries.size()) * reps);
    std::printf("%-10d %12.4f %16.3f\n", size, auc, micros);
    if (sink < -1.0) std::printf("?");  // keep the measurement un-elided
  }
  std::printf(
      "\n(expected: accuracy saturates by ~5 — users are active in few\n"
      " communities [34] — while cost grows quadratically in the size)\n");
  return 0;
}
