# Empty dependencies file for cold_train.
# This may be replaced when dependencies are built.
