// Diffusion prediction and the other inference-time tasks built on the
// extracted community-level representation (§5.2, §6.2, §6.3).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/cold_estimates.h"
#include "text/post_store.h"
#include "util/status.h"

namespace cold::core {

/// \brief Inference-time predictor over fitted ColdEstimates.
///
/// Construction performs the paper's offline step: pre-collecting each
/// user's TopComm set (§5.2), so the per-triple online prediction is a
/// weighted linear combination of O(K |w_d|) cost.
///
/// Two backing modes share one prediction path:
///  - owned: constructed from ColdEstimates (moved into shared storage);
///    TopComm is computed here, the offline step proper.
///  - view: constructed over an EstimatesView plus an externally
///    precomputed TopComm table (e.g. an mmap'd snapshot arena, which bakes
///    the table in at save time) and a keepalive handle pinning the backing
///    bytes. Construction is O(1) — no copy, no allocation proportional to
///    the model — which is what makes serving hot-reload a pointer swap.
/// Copies are cheap and safe in both modes: the parameter storage is held
/// by shared_ptr, so views never dangle.
class ColdPredictor {
 public:
  /// \param top_communities |TopComm(i)|; the paper fixes 5.
  explicit ColdPredictor(ColdEstimates estimates, int top_communities = 5);

  /// View mode: predict straight out of caller-owned storage. `top_comm`
  /// must hold `view.U * min(top_communities, view.C)` entries, row-major
  /// per user, each row sorted by descending pi (exactly what
  /// ColdEstimates::TopCommunitiesForUser produces). `keepalive` pins the
  /// bytes behind both `view` and `top_comm` for this predictor's lifetime.
  ColdPredictor(const EstimatesView& view,
                std::shared_ptr<const void> keepalive,
                std::span<const int32_t> top_comm, int top_communities);

  const EstimatesView& estimates() const { return view_; }

  /// \brief True iff `u` indexes a user known to the model.
  bool ValidUser(text::UserId u) const { return u >= 0 && u < view_.U; }

  /// \brief True iff `w` indexes a vocabulary word known to the model.
  bool ValidWord(text::WordId w) const { return w >= 0 && w < view_.V; }

  /// \brief Validates a (author, words) query against the model's
  /// dimensions: OutOfRange naming the offending id on failure.
  ///
  /// Serving entry points call this before the fast path; the prediction
  /// methods themselves also guard and return a sentinel (empty vector /
  /// NaN / -1) rather than indexing out of bounds, so hostile inputs can
  /// never corrupt memory.
  cold::Status ValidateQuery(text::UserId author,
                             std::span<const text::WordId> words) const;

  /// \brief P(k | d, i), Eq. (5): topic posterior of a message given its
  /// words and its publisher's interests. Returned vector sums to 1.
  /// Sentinel: empty vector when `author` or any word is out of range.
  std::vector<double> TopicPosterior(std::span<const text::WordId> words,
                                     text::UserId author) const;

  /// \brief P(i, i' | k), Eq. (6): influence of i on i' at topic k through
  /// their top communities.
  double TopicInfluence(text::UserId i, text::UserId i2, int k) const;

  /// \brief P(i, i', d), Eq. (7): probability that post d spreads from i
  /// to i'. Sentinel: NaN on out-of-range users or words.
  double DiffusionProbability(text::UserId i, text::UserId i2,
                              std::span<const text::WordId> words) const;

  /// \brief Eq. (7) given a topic posterior already computed by
  /// TopicPosterior(words, i) — the serving layer's micro-batching uses
  /// this so one posterior (the expensive O(K |w_d|) half) is shared
  /// across every candidate scored against the same post. Sentinel: NaN
  /// on out-of-range users or a posterior of the wrong length.
  double DiffusionFromPosterior(text::UserId i, text::UserId i2,
                                std::span<const double> topic_posterior) const;

  /// \brief Link-prediction score P_{i->i'} = sum_{s,s'} pi_is pi_i's'
  /// eta_ss' (§6.2); uses the full membership vectors, not TopComm.
  /// Sentinel: NaN on out-of-range users.
  double LinkProbability(text::UserId i, text::UserId i2) const;

  /// \brief Per-time-slice score of a previously unseen post (§6.3):
  /// s_t = sum_c pi_ic sum_k theta_ck psi_kct prod_l phi_k,w. Scores are
  /// normalized to a distribution over t. Sentinel: empty vector on
  /// out-of-range author or words.
  std::vector<double> TimestampScores(std::span<const text::WordId> words,
                                      text::UserId author) const;

  /// \brief argmax_t TimestampScores. Sentinel: -1 on invalid inputs.
  int PredictTimestamp(std::span<const text::WordId> words,
                       text::UserId author) const;

  /// \brief log p(w_d) for one held-out post under §6.2's mixture
  /// p(w_d) = sum_c pi_ic sum_k theta_ck prod_l phi_k,w_dl.
  double LogPostProbability(std::span<const text::WordId> words,
                            text::UserId author) const;

  /// \brief Corpus perplexity exp(-sum_d log p(w_d) / sum_d N_d) (§6.2).
  double Perplexity(const text::PostStore& test_posts) const;

  /// TopComm(i) as precomputed at construction (or baked into the snapshot
  /// arena in view mode). Sentinel: an empty span on out-of-range `i`.
  std::span<const int32_t> TopComm(text::UserId i) const {
    if (!ValidUser(i)) return {};
    return {top_comm_data_ + static_cast<size_t>(i) * top_communities_,
            static_cast<size_t>(top_communities_)};
  }

  /// \brief A time-stamped bag of words from a user unseen at training
  /// time, for fold-in.
  struct FoldInPost {
    std::vector<text::WordId> words;
    text::TimeSlice time = 0;
  };

  /// \brief Cold-start membership inference: estimates pi for a NEW user
  /// from her posts alone, holding theta/phi/psi fixed (EM over the
  /// per-post community responsibilities under the trained model). With no
  /// posts the symmetric prior (uniform) is returned.
  std::vector<double> FoldInMembership(std::span<const FoldInPost> posts,
                                       int iterations = 10,
                                       double rho = 0.5) const;

  /// \brief Eq. (7) with an explicit membership vector for the candidate
  /// side — lets fold-in users be scored as potential retweeters.
  double DiffusionProbabilityToNewUser(
      text::UserId publisher, std::span<const double> candidate_pi,
      std::span<const text::WordId> words) const;

 private:
  /// Per-topic log word likelihood sum_l log phi_k,w_l.
  void WordLogLikelihoods(std::span<const text::WordId> words,
                          std::vector<double>* out) const;

  // Owned mode: `owned_` holds the estimates and `top_comm_store_` the
  // flat TopComm table; view mode: both are null and `keepalive_` pins the
  // external storage. `view_`/`top_comm_data_` always point at whichever
  // backing is active — shared_ptr storage keeps them valid across copies.
  std::shared_ptr<const ColdEstimates> owned_;
  std::shared_ptr<const std::vector<int32_t>> top_comm_store_;
  std::shared_ptr<const void> keepalive_;
  EstimatesView view_;
  const int32_t* top_comm_data_ = nullptr;
  int top_communities_ = 0;
};

}  // namespace cold::core
