#include "apps/user_influence.h"

#include <algorithm>
#include <deque>

#include "util/math_util.h"

namespace cold::apps {

UserDiffusionGraph BuildUserDiffusionGraph(
    const core::ColdPredictor& predictor, const graph::Digraph& followers,
    std::span<const text::WordId> message, double gain) {
  UserDiffusionGraph graph;
  graph.adjacency.resize(static_cast<size_t>(followers.num_nodes()));
  for (graph::NodeId i = 0; i < followers.num_nodes(); ++i) {
    for (graph::EdgeId e : followers.out_edges(i)) {
      int f = followers.edge(e).dst;
      double p = std::min(
          1.0, gain * predictor.DiffusionProbability(i, f, message));
      graph.adjacency[static_cast<size_t>(i)].push_back({f, p});
    }
  }
  return graph;
}

int SimulateUserCascadeOnce(const UserDiffusionGraph& graph,
                            const std::vector<int>& seeds,
                            cold::RandomSampler* sampler) {
  std::vector<char> active(graph.adjacency.size(), 0);
  std::deque<int> frontier;
  int activated = 0;
  for (int s : seeds) {
    if (s >= 0 && s < graph.num_users() && !active[static_cast<size_t>(s)]) {
      active[static_cast<size_t>(s)] = 1;
      frontier.push_back(s);
      ++activated;
    }
  }
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop_front();
    for (const UserDiffusionGraph::Arc& arc :
         graph.adjacency[static_cast<size_t>(u)]) {
      if (active[static_cast<size_t>(arc.target)]) continue;
      if (sampler->Bernoulli(arc.probability)) {
        active[static_cast<size_t>(arc.target)] = 1;
        frontier.push_back(arc.target);
        ++activated;
      }
    }
  }
  return activated;
}

double ExpectedUserSpread(const UserDiffusionGraph& graph,
                          const std::vector<int>& seeds, int trials,
                          cold::RandomSampler* sampler) {
  if (trials <= 0) return 0.0;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    total += SimulateUserCascadeOnce(graph, seeds, sampler);
  }
  return total / trials;
}

std::vector<int> DegreeSeeds(const UserDiffusionGraph& graph, int budget) {
  std::vector<double> degree(graph.adjacency.size());
  for (size_t i = 0; i < graph.adjacency.size(); ++i) {
    degree[i] = static_cast<double>(graph.adjacency[i].size());
  }
  return cold::TopKIndices(degree, budget);
}

std::vector<int> GreedyUserSeeds(const UserDiffusionGraph& graph, int budget,
                                 int trials, int candidate_pool,
                                 uint64_t seed) {
  cold::RandomSampler sampler(seed, /*stream=*/43);
  // Candidate pruning: greedy marginal-gain evaluation only over the
  // highest-degree users.
  std::vector<int> candidates =
      DegreeSeeds(graph, std::min<int>(candidate_pool, graph.num_users()));
  std::vector<int> seeds;
  std::vector<char> chosen(graph.adjacency.size(), 0);
  double current = 0.0;
  budget = std::min(budget, static_cast<int>(candidates.size()));
  for (int round = 0; round < budget; ++round) {
    int best = -1;
    double best_spread = current;
    for (int u : candidates) {
      if (chosen[static_cast<size_t>(u)]) continue;
      std::vector<int> trial_seeds = seeds;
      trial_seeds.push_back(u);
      double spread = ExpectedUserSpread(graph, trial_seeds, trials, &sampler);
      if (spread > best_spread) {
        best_spread = spread;
        best = u;
      }
    }
    if (best < 0) break;
    seeds.push_back(best);
    chosen[static_cast<size_t>(best)] = 1;
    current = best_spread;
  }
  return seeds;
}

}  // namespace cold::apps
