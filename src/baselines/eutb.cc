#include "baselines/eutb.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace cold::baselines {

EutbModel::EutbModel(EutbConfig config, const text::PostStore& posts)
    : config_(config), posts_(posts) {
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    for (text::WordId w : posts_.words(d)) vocab_ = std::max(vocab_, w + 1);
  }
}

cold::Status EutbModel::Train() {
  if (config_.num_topics < 1 || config_.iterations < 1) {
    return cold::Status::InvalidArgument("bad EUTB config");
  }
  if (!posts_.finalized() || posts_.num_posts() == 0) {
    return cold::Status::InvalidArgument("no posts");
  }
  const int K = config_.num_topics;
  const int U = posts_.num_users();
  const int T = posts_.num_time_slices();
  const double alpha = config_.ResolvedAlpha();
  const double beta = config_.beta;

  std::vector<int32_t> n_uk(static_cast<size_t>(U) * K, 0);
  std::vector<int32_t> n_u(static_cast<size_t>(U), 0);
  std::vector<int32_t> n_tk(static_cast<size_t>(T) * K, 0);
  std::vector<int32_t> n_t(static_cast<size_t>(T), 0);
  std::vector<int32_t> n_kv(static_cast<size_t>(K) * vocab_, 0);
  std::vector<int32_t> n_k(static_cast<size_t>(K), 0);
  std::vector<int32_t> post_topic(static_cast<size_t>(posts_.num_posts()));
  std::vector<uint8_t> post_source(static_cast<size_t>(posts_.num_posts()));
  int64_t user_source_count = 0;
  double lambda = config_.user_source_prior;

  cold::RandomSampler sampler(config_.seed, /*stream=*/41);
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    int k = static_cast<int>(sampler.UniformInt(static_cast<uint32_t>(K)));
    bool from_user = sampler.Bernoulli(lambda);
    post_topic[static_cast<size_t>(d)] = static_cast<int32_t>(k);
    post_source[static_cast<size_t>(d)] = from_user ? 1 : 0;
    if (from_user) {
      n_uk[static_cast<size_t>(posts_.author(d)) * K + k]++;
      n_u[static_cast<size_t>(posts_.author(d))]++;
      ++user_source_count;
    } else {
      n_tk[static_cast<size_t>(posts_.time(d)) * K + k]++;
      n_t[static_cast<size_t>(posts_.time(d))]++;
    }
    for (text::WordId w : posts_.words(d)) {
      n_kv[static_cast<size_t>(k) * vocab_ + w]++;
    }
    n_k[static_cast<size_t>(k)] += posts_.length(d);
  }

  // Joint (source, topic) Gibbs over 2K options in log space.
  std::vector<double> log_weights(static_cast<size_t>(2 * K));
  for (int it = 0; it < config_.iterations; ++it) {
    for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
      int i = posts_.author(d);
      int t = posts_.time(d);
      int old_k = post_topic[static_cast<size_t>(d)];
      bool old_user = post_source[static_cast<size_t>(d)] != 0;
      int len = posts_.length(d);
      if (old_user) {
        n_uk[static_cast<size_t>(i) * K + old_k]--;
        n_u[static_cast<size_t>(i)]--;
        --user_source_count;
      } else {
        n_tk[static_cast<size_t>(t) * K + old_k]--;
        n_t[static_cast<size_t>(t)]--;
      }
      for (text::WordId w : posts_.words(d)) {
        n_kv[static_cast<size_t>(old_k) * vocab_ + w]--;
      }
      n_k[static_cast<size_t>(old_k)] -= len;

      auto word_counts = posts_.WordCounts(d);
      for (int k = 0; k < K; ++k) {
        double word_term = 0.0;
        for (const auto& [w, cnt] : word_counts) {
          double base = n_kv[static_cast<size_t>(k) * vocab_ + w] + beta;
          for (int q = 0; q < cnt; ++q) word_term += std::log(base + q);
        }
        double denom = n_k[static_cast<size_t>(k)] + vocab_ * beta;
        for (int q = 0; q < len; ++q) word_term -= std::log(denom + q);

        log_weights[static_cast<size_t>(k)] =
            std::log(lambda) +
            std::log((n_uk[static_cast<size_t>(i) * K + k] + alpha) /
                     (n_u[static_cast<size_t>(i)] + K * alpha)) +
            word_term;
        log_weights[static_cast<size_t>(K + k)] =
            std::log(1.0 - lambda) +
            std::log((n_tk[static_cast<size_t>(t) * K + k] + alpha) /
                     (n_t[static_cast<size_t>(t)] + K * alpha)) +
            word_term;
      }
      int pick = sampler.LogCategorical(log_weights);
      bool from_user = pick < K;
      int new_k = from_user ? pick : pick - K;
      post_topic[static_cast<size_t>(d)] = static_cast<int32_t>(new_k);
      post_source[static_cast<size_t>(d)] = from_user ? 1 : 0;
      if (from_user) {
        n_uk[static_cast<size_t>(i) * K + new_k]++;
        n_u[static_cast<size_t>(i)]++;
        ++user_source_count;
      } else {
        n_tk[static_cast<size_t>(t) * K + new_k]++;
        n_t[static_cast<size_t>(t)]++;
      }
      for (text::WordId w : posts_.words(d)) {
        n_kv[static_cast<size_t>(new_k) * vocab_ + w]++;
      }
      n_k[static_cast<size_t>(new_k)] += len;
    }
    // Re-estimate the switch probability (Beta(1,1) posterior mean).
    lambda = (static_cast<double>(user_source_count) + 1.0) /
             (static_cast<double>(posts_.num_posts()) + 2.0);
    lambda = std::clamp(lambda, 0.05, 0.95);
  }

  estimates_.U = U;
  estimates_.K = K;
  estimates_.V = vocab_;
  estimates_.T = T;
  estimates_.lambda_user = lambda;
  estimates_.theta_user.resize(static_cast<size_t>(U) * K);
  for (int i = 0; i < U; ++i) {
    double denom = n_u[static_cast<size_t>(i)] + K * alpha;
    for (int k = 0; k < K; ++k) {
      estimates_.theta_user[static_cast<size_t>(i) * K + k] =
          (n_uk[static_cast<size_t>(i) * K + k] + alpha) / denom;
    }
  }
  estimates_.theta_time.resize(static_cast<size_t>(T) * K);
  for (int t = 0; t < T; ++t) {
    double denom = n_t[static_cast<size_t>(t)] + K * alpha;
    for (int k = 0; k < K; ++k) {
      estimates_.theta_time[static_cast<size_t>(t) * K + k] =
          (n_tk[static_cast<size_t>(t) * K + k] + alpha) / denom;
    }
  }
  estimates_.phi.resize(static_cast<size_t>(K) * vocab_);
  for (int k = 0; k < K; ++k) {
    double denom = n_k[static_cast<size_t>(k)] + vocab_ * beta;
    for (int v = 0; v < vocab_; ++v) {
      estimates_.phi[static_cast<size_t>(k) * vocab_ + v] =
          (n_kv[static_cast<size_t>(k) * vocab_ + v] + beta) / denom;
    }
  }
  estimates_.slice_prior.assign(static_cast<size_t>(T), 0.0);
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    estimates_.slice_prior[static_cast<size_t>(posts_.time(d))] += 1.0;
  }
  cold::NormalizeInPlace(estimates_.slice_prior);

  ApplyBurstWeightedSmoothing();
  return cold::Status::OK();
}

void EutbModel::ApplyBurstWeightedSmoothing() {
  const int T = estimates_.T;
  const int K = estimates_.K;
  const int W = config_.smoothing_window;
  if (W <= 0 || T < 2) return;
  // Burst weight of a slice: its post share relative to the average share.
  std::vector<double> burst(static_cast<size_t>(T));
  double avg = 1.0 / T;
  for (int t = 0; t < T; ++t) {
    burst[static_cast<size_t>(t)] =
        estimates_.slice_prior[static_cast<size_t>(t)] / avg;
  }
  std::vector<double> smoothed(static_cast<size_t>(T) * K, 0.0);
  for (int t = 0; t < T; ++t) {
    double weight_sum = 0.0;
    for (int dt = -W; dt <= W; ++dt) {
      int t2 = t + dt;
      if (t2 < 0 || t2 >= T) continue;
      // Triangular kernel scaled by the neighbor's burstiness: bursty
      // slices dominate their neighborhood.
      double w = (1.0 - std::abs(dt) / static_cast<double>(W + 1)) *
                 (0.2 + burst[static_cast<size_t>(t2)]);
      weight_sum += w;
      for (int k = 0; k < K; ++k) {
        smoothed[static_cast<size_t>(t) * K + k] +=
            w * estimates_.theta_time[static_cast<size_t>(t2) * K + k];
      }
    }
    for (int k = 0; k < K; ++k) {
      smoothed[static_cast<size_t>(t) * K + k] /= weight_sum;
    }
  }
  estimates_.theta_time = std::move(smoothed);
}

std::vector<double> EutbModel::TimestampScores(
    std::span<const text::WordId> words, text::UserId author) const {
  const int K = estimates_.K;
  std::vector<double> log_w(static_cast<size_t>(K));
  for (int k = 0; k < K; ++k) {
    double lw = 0.0;
    for (text::WordId w : words) {
      lw += std::log(
          std::max(estimates_.Phi(k, std::min<int>(w, vocab_ - 1)), 1e-300));
    }
    log_w[static_cast<size_t>(k)] = lw;
  }
  double max_lw = *std::max_element(log_w.begin(), log_w.end());

  std::vector<double> scores(static_cast<size_t>(estimates_.T), 0.0);
  for (int t = 0; t < estimates_.T; ++t) {
    double s = 0.0;
    for (int k = 0; k < K; ++k) {
      double blend =
          estimates_.lambda_user * estimates_.ThetaUser(author, k) +
          (1.0 - estimates_.lambda_user) * estimates_.ThetaTime(t, k);
      s += blend * std::exp(log_w[static_cast<size_t>(k)] - max_lw);
    }
    scores[static_cast<size_t>(t)] =
        s * estimates_.slice_prior[static_cast<size_t>(t)];
  }
  cold::NormalizeInPlace(scores);
  return scores;
}

int EutbModel::PredictTimestamp(std::span<const text::WordId> words,
                                text::UserId author) const {
  std::vector<double> scores = TimestampScores(words, author);
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

double EutbModel::LogPostProbability(std::span<const text::WordId> words,
                                     text::UserId author) const {
  const int K = estimates_.K;
  // Blend of user mixture and prior-weighted time mixtures.
  std::vector<double> topic_prior(static_cast<size_t>(K), 0.0);
  for (int k = 0; k < K; ++k) {
    double time_mix = 0.0;
    for (int t = 0; t < estimates_.T; ++t) {
      time_mix += estimates_.slice_prior[static_cast<size_t>(t)] *
                  estimates_.ThetaTime(t, k);
    }
    topic_prior[static_cast<size_t>(k)] =
        estimates_.lambda_user * estimates_.ThetaUser(author, k) +
        (1.0 - estimates_.lambda_user) * time_mix;
  }
  // Post-level mixture, matching the one-topic-per-post generative unit:
  // p(w_d) = sum_k prior_k prod_l phi_k,w.
  std::vector<double> terms(static_cast<size_t>(K));
  for (int k = 0; k < K; ++k) {
    double lw = std::log(std::max(topic_prior[static_cast<size_t>(k)], 1e-300));
    for (text::WordId w : words) {
      lw += std::log(
          std::max(estimates_.Phi(k, std::min<int>(w, vocab_ - 1)), 1e-300));
    }
    terms[static_cast<size_t>(k)] = lw;
  }
  return cold::LogSumExp(terms);
}

double EutbModel::Perplexity(const text::PostStore& test_posts) const {
  double total_ll = 0.0;
  int64_t tokens = 0;
  for (text::PostId d = 0; d < test_posts.num_posts(); ++d) {
    if (test_posts.length(d) == 0) continue;
    total_ll += LogPostProbability(test_posts.words(d), test_posts.author(d));
    tokens += test_posts.length(d);
  }
  if (tokens == 0) return 0.0;
  return std::exp(-total_ll / static_cast<double>(tokens));
}

}  // namespace cold::baselines
