// Scenario: adopting the library on YOUR data. Raw posts arrive as
// (author, hour, text) records and retweet events as (author, retweeter)
// pairs; this example runs the full ingestion path — tokenizer with stop
// words, vocabulary interning, PostStore/Digraph construction — then trains
// a small COLD model and prints what it extracted.
#include <cstdio>
#include <string_view>

#include "core/cold.h"
#include "graph/digraph.h"
#include "text/post_store.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/logging.h"

namespace {

struct RawPost {
  int author;
  int hour;
  std::string_view text;
};

// A miniature two-community corpus: users 0-2 talk football, users 3-5 talk
// gadgets; the game chatter clusters in hours 0-2, the product-launch
// chatter in hours 3-5.
constexpr RawPost kRawPosts[] = {
    {0, 0, "What a match! The striker scored twice tonight"},
    {0, 1, "Penalty shootout drama, the keeper saved three!"},
    {0, 2, "League table update: our club tops the table"},
    {1, 0, "Coach says the midfield pressing won the match"},
    {1, 1, "That offside call... referee needs glasses"},
    {1, 2, "Transfer rumor: the striker might join our club"},
    {2, 0, "Stadium was electric, best match of the season"},
    {2, 1, "Fantasy league points from the striker, again"},
    {2, 2, "Derby day! Match thread below"},
    {3, 3, "The new phone benchmark results are insane"},
    {3, 4, "Unboxing the phone today, camera looks stunning"},
    {3, 5, "Battery life review: two days on one charge"},
    {4, 3, "Chipset deep dive: the benchmark numbers explained"},
    {4, 4, "Comparing camera sensors across flagship phones"},
    {4, 5, "Firmware update improves the benchmark scores"},
    {5, 3, "Preordered the phone, benchmark threads convinced me"},
    {5, 4, "The camera app UI is finally fast"},
    {5, 5, "Phone review roundup: battery and camera win"},
};

// Who retweeted whom (src = publisher, dst = retweeter).
constexpr std::pair<int, int> kRetweets[] = {
    {0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 1},
    {3, 4}, {3, 5}, {4, 3}, {4, 5}, {5, 4},
    {0, 3},  // one weak tie across the communities
};

}  // namespace

int main() {
  using namespace cold;
  Logger::SetLevel(LogLevel::kWarning);

  // 1. Tokenize and intern.
  text::Tokenizer tokenizer;
  tokenizer.AddDefaultStopWords();
  text::Vocabulary vocabulary;
  text::PostStore posts;
  for (const RawPost& raw : kRawPosts) {
    std::vector<text::WordId> ids;
    for (const std::string& token : tokenizer.Tokenize(raw.text)) {
      ids.push_back(vocabulary.Add(token));
    }
    posts.Add(raw.author, raw.hour, ids);
  }
  posts.Finalize(/*min_users=*/6, /*min_time_slices=*/6);
  std::printf("ingested %d posts, %d users, vocabulary %d words\n",
              posts.num_posts(), posts.num_users(), vocabulary.size());

  // 2. Interaction network from retweet events.
  graph::Digraph::Builder builder;
  for (auto [src, dst] : kRetweets) {
    if (auto st = builder.AddEdge(src, dst); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  graph::Digraph interactions =
      std::move(builder).Build(/*num_nodes=*/6, /*dedupe=*/true);

  // 3. Train a tiny COLD model.
  core::ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.rho = 0.3;
  config.alpha = 0.3;
  config.iterations = 200;
  config.burn_in = 150;
  config.seed = 7;
  core::ColdGibbsSampler sampler(config, posts, &interactions);
  if (!sampler.Init().ok() || !sampler.Train().ok()) return 1;
  core::ColdEstimates estimates = sampler.AveragedEstimates();

  // 4. Inspect: the two topics should separate football from gadgets and
  //    the memberships should split users 0-2 from 3-5.
  for (int k = 0; k < estimates.K; ++k) {
    std::printf("topic %d:", k);
    for (int w : estimates.TopWords(k, 6)) {
      std::printf(" %s", vocabulary.word(w).c_str());
    }
    std::printf("\n");
  }
  std::printf("memberships (pi):\n");
  for (int i = 0; i < estimates.U; ++i) {
    std::printf("  user %d:", i);
    for (int c = 0; c < estimates.C; ++c) {
      std::printf(" %.2f", estimates.Pi(i, c));
    }
    std::printf("\n");
  }
  std::printf("temporal profile of each topic in its top community "
              "(hours 0-5):\n");
  for (int k = 0; k < estimates.K; ++k) {
    int c = estimates.TopCommunitiesForTopic(k, 1)[0];
    std::printf("  topic %d in community %d:", k, c);
    for (double v : estimates.PsiSeries(k, c)) std::printf(" %.2f", v);
    std::printf("\n");
  }
  return 0;
}
