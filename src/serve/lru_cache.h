// Bounded, thread-safe LRU cache used by the serving layer to memoize
// per-(author, words) topic posteriors. A single mutex guards the map and
// recency list — query-time values are small vectors and lookups are
// microseconds, so sharding is not worth the complexity at this layer.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace cold::serve {

/// \brief String-keyed LRU map holding shared_ptr<const V> values so hits
/// can be returned without copying while eviction stays O(1).
template <typename V>
class LruCache {
 public:
  /// `capacity` == 0 disables caching entirely (every Get misses).
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }

  /// \brief Returns the cached value and refreshes its recency, or nullptr.
  std::shared_ptr<const V> Get(const std::string& key) {
    if (capacity_ == 0) return nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// \brief Inserts/overwrites `key`, evicting the least-recently-used
  /// entry when full.
  void Put(const std::string& key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  /// \brief Drops every entry (model hot-reload invalidation).
  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    index_.clear();
    order_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
  }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const V>>;

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> order_;  // Front = most recently used.
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_;
};

}  // namespace cold::serve
