// Latent assignments and sufficient-statistic counters of the collapsed
// Gibbs sampler (all counters named as in Table 1 / Eqs 1-3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/cold_config.h"
#include "graph/digraph.h"
#include "text/post_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace cold::core {

/// \brief All mutable sampler state: per-post (c, z), per-link (s, s'), and
/// the count matrices they induce.
///
/// Counter layout is row-major flat storage; accessors document the paper's
/// notation. The same struct backs the serial and the parallel sampler (the
/// latter reads/writes it through atomics over the same memory layout).
class ColdState {
 public:
  /// Builds zeroed state with the given dimensions.
  ColdState(int num_users, int num_communities, int num_topics,
            int num_time_slices, int vocab_size, int num_posts,
            int64_t num_links);

  // --- dimensions -------------------------------------------------------
  int U() const { return num_users_; }
  int C() const { return num_communities_; }
  int K() const { return num_topics_; }
  int T() const { return num_time_slices_; }
  int V() const { return vocab_size_; }

  // --- assignments ------------------------------------------------------
  /// Community of post d (c_ij in the paper).
  std::vector<int32_t> post_community;
  /// Topic of post d (z_ij).
  std::vector<int32_t> post_topic;
  /// Source-side community of link e (s_ii').
  std::vector<int32_t> link_src_community;
  /// Destination-side community of link e (s'_ii').
  std::vector<int32_t> link_dst_community;

  // --- counters ---------------------------------------------------------
  /// n_i^(c): posts and link endpoints of user i assigned to community c.
  int32_t& n_ic(int i, int c) {
    return n_ic_[static_cast<size_t>(i) * num_communities_ + c];
  }
  int32_t n_ic(int i, int c) const {
    return n_ic_[static_cast<size_t>(i) * num_communities_ + c];
  }
  /// n_i^(.): total posts + link endpoints of user i (constant during
  /// sampling).
  int32_t& n_i(int i) { return n_i_[static_cast<size_t>(i)]; }
  int32_t n_i(int i) const { return n_i_[static_cast<size_t>(i)]; }

  /// n_c^(k): posts assigned to community c with topic k.
  int32_t& n_ck(int c, int k) {
    return n_ck_[static_cast<size_t>(c) * num_topics_ + k];
  }
  int32_t n_ck(int c, int k) const {
    return n_ck_[static_cast<size_t>(c) * num_topics_ + k];
  }
  /// n_c^(.): posts assigned to community c.
  int32_t& n_c(int c) { return n_c_[static_cast<size_t>(c)]; }
  int32_t n_c(int c) const { return n_c_[static_cast<size_t>(c)]; }

  /// n_{ck}^{(t)}: posts with community c, topic k and time stamp t. Its
  /// time-marginal n_{ck}^{(.)} equals n_c^{(k)} (one stamp per post).
  int32_t& n_ckt(int c, int k, int t) {
    return n_ckt_[(static_cast<size_t>(c) * num_topics_ + k) *
                      num_time_slices_ +
                  t];
  }
  int32_t n_ckt(int c, int k, int t) const {
    return n_ckt_[(static_cast<size_t>(c) * num_topics_ + k) *
                      num_time_slices_ +
                  t];
  }

  /// n_k^(v): occurrences of word v assigned to topic k.
  int32_t& n_kv(int k, int v) {
    return n_kv_[static_cast<size_t>(k) * vocab_size_ + v];
  }
  int32_t n_kv(int k, int v) const {
    return n_kv_[static_cast<size_t>(k) * vocab_size_ + v];
  }
  /// n_k^(.): tokens assigned to topic k.
  int32_t& n_k(int k) { return n_k_[static_cast<size_t>(k)]; }
  int32_t n_k(int k) const { return n_k_[static_cast<size_t>(k)]; }

  /// n_{cc'}: positive links whose indicators are (c, c').
  int32_t& n_cc(int c, int c2) {
    return n_cc_[static_cast<size_t>(c) * num_communities_ + c2];
  }
  int32_t n_cc(int c, int c2) const {
    return n_cc_[static_cast<size_t>(c) * num_communities_ + c2];
  }

  /// Raw flat access for estimate extraction.
  const std::vector<int32_t>& n_ic_flat() const { return n_ic_; }
  const std::vector<int32_t>& n_i_flat() const { return n_i_; }
  const std::vector<int32_t>& n_ck_flat() const { return n_ck_; }
  const std::vector<int32_t>& n_c_flat() const { return n_c_; }
  const std::vector<int32_t>& n_ckt_flat() const { return n_ckt_; }
  const std::vector<int32_t>& n_kv_flat() const { return n_kv_; }
  const std::vector<int32_t>& n_k_flat() const { return n_k_; }
  const std::vector<int32_t>& n_cc_flat() const { return n_cc_; }

  /// Mutable flat access for the checkpoint restore path (counter tables
  /// are installed wholesale from a validated payload, then cross-checked
  /// against a recount via CheckInvariants).
  std::vector<int32_t>& mut_n_ic_flat() { return n_ic_; }
  std::vector<int32_t>& mut_n_i_flat() { return n_i_; }
  std::vector<int32_t>& mut_n_ck_flat() { return n_ck_; }
  std::vector<int32_t>& mut_n_c_flat() { return n_c_; }
  std::vector<int32_t>& mut_n_ckt_flat() { return n_ckt_; }
  std::vector<int32_t>& mut_n_kv_flat() { return n_kv_; }
  std::vector<int32_t>& mut_n_k_flat() { return n_k_; }
  std::vector<int32_t>& mut_n_cc_flat() { return n_cc_; }

  /// \brief Verifies every counter equals a fresh recount from the
  /// assignment vectors; used by tests after sampling sweeps.
  cold::Status CheckInvariants(const text::PostStore& posts,
                               const graph::Digraph* links,
                               bool use_network) const;

 private:
  int num_users_;
  int num_communities_;
  int num_topics_;
  int num_time_slices_;
  int vocab_size_;

  std::vector<int32_t> n_ic_;
  std::vector<int32_t> n_i_;
  std::vector<int32_t> n_ck_;
  std::vector<int32_t> n_c_;
  std::vector<int32_t> n_ckt_;
  std::vector<int32_t> n_kv_;
  std::vector<int32_t> n_k_;
  std::vector<int32_t> n_cc_;
};

}  // namespace cold::core
