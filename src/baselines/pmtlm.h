// Poisson Mixed-Topic Link Model (Zhu et al., KDD 2013) — the text+link
// baseline of §6.1 in which ONE latent factor generates both a user's words
// and her links (community === topic, the coupling COLD removes).
//
// Following §3.5's observation about text-link models in the social setting,
// each user's post collection is treated as one document. Links carry a
// single factor assignment shared by both endpoints; the per-factor link
// propensity delta_f absorbs the Poisson rate, with the same
// negative-link Beta prior trick as COLD so training stays linear in the
// positive links.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.h"
#include "text/post_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace cold::baselines {

struct PmtlmConfig {
  /// Number of latent factors (simultaneously "topics" and "communities").
  int num_factors = 20;
  double alpha = -1.0;  // <= 0 means 50/F
  double beta = 0.01;
  double lambda1 = 0.1;
  double kappa = 1.0;
  int iterations = 100;
  uint64_t seed = 42;

  double ResolvedAlpha() const {
    return alpha > 0 ? alpha : 50.0 / num_factors;
  }
};

struct PmtlmEstimates {
  int U = 0, F = 0, V = 0;
  /// theta[i*F + f]: user i's factor mixture (from words AND links).
  std::vector<double> theta;
  /// phi[f*V + v]: factor word distributions.
  std::vector<double> phi;
  /// delta[f]: per-factor link propensity.
  std::vector<double> delta;

  double Theta(int i, int f) const {
    return theta[static_cast<size_t>(i) * F + f];
  }
  double Phi(int f, int v) const {
    return phi[static_cast<size_t>(f) * V + v];
  }
};

class PmtlmModel {
 public:
  PmtlmModel(PmtlmConfig config, const text::PostStore& posts,
             const graph::Digraph& links);

  cold::Status Train();

  const PmtlmEstimates& estimates() const { return estimates_; }

  /// P(i -> i') proportional to sum_f theta_if theta_i'f delta_f.
  double LinkProbability(int i, int i2) const;

  /// log p(w_d | author) under the author's factor mixture.
  double LogPostProbability(std::span<const text::WordId> words,
                            text::UserId author) const;

  double Perplexity(const text::PostStore& test_posts) const;

 private:
  PmtlmConfig config_;
  const text::PostStore& posts_;
  const graph::Digraph& links_;
  int vocab_ = 0;
  double lambda0_ = 0.1;
  PmtlmEstimates estimates_;
};

}  // namespace cold::baselines
