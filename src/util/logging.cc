#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace cold {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

/// The installed sink; empty means the stderr default. Guarded by g_mutex.
Logger::Sink& SinkRef() {
  static Logger::Sink* sink = new Logger::Sink();
  return *sink;
}

std::chrono::steady_clock::time_point LogEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  SinkRef() = std::move(sink);
}

double Logger::MonotonicSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       LogEpoch())
      .count();
}

void Logger::Log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  const Sink& sink = SinkRef();
  if (sink) {
    sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[%10.3f] [%s] %s\n", MonotonicSeconds(),
               LevelName(level), msg.c_str());
}

}  // namespace cold
