// Scenario: an analyst explores how topics move through communities over
// time — §5.1/§5.3 end to end: the per-topic diffusion summary (Fig 5), the
// interest-vs-fluctuation correlation (Fig 6), and the high/medium interest
// time lag (Fig 7). Also demonstrates dataset save/load round-tripping, the
// path for plugging in real exported data.
#include <cstdio>
#include <filesystem>

#include "apps/diffusion_graph.h"
#include "apps/patterns.h"
#include "core/cold.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "util/logging.h"
#include "util/math_util.h"

int main(int argc, char** argv) {
  using namespace cold;
  Logger::SetLevel(LogLevel::kWarning);

  // With a directory argument, load an existing dataset (the on-disk format
  // documented in data/serialize.h); otherwise generate one and save it so
  // the next run can reload it.
  std::string dir = argc > 1
                        ? argv[1]
                        : (std::filesystem::temp_directory_path() /
                           "cold_explorer_dataset").string();
  data::SocialDataset dataset;
  if (std::filesystem::exists(dir + "/posts.tsv")) {
    std::printf("loading dataset from %s\n", dir.c_str());
    auto loaded = data::LoadDataset(dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).ValueOrDie();
  } else {
    data::SyntheticConfig data_config;
    data_config.num_users = 600;
    data_config.num_communities = 8;
    data_config.num_topics = 12;
    dataset = std::move(
        data::SyntheticSocialGenerator(data_config).Generate()).ValueOrDie();
    if (auto st = data::SaveDataset(dataset, dir); !st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    } else {
      std::printf("dataset saved to %s (rerun to load from disk)\n",
                  dir.c_str());
    }
  }

  core::ColdConfig config;
  config.num_communities = 8;
  config.num_topics = 12;
  config.rho = 0.5;
  config.alpha = 0.5;
  config.kappa = 10.0;
  config.iterations = 150;
  config.burn_in = 110;
  core::ColdGibbsSampler sampler(config, dataset.posts, &dataset.interactions);
  if (!sampler.Init().ok() || !sampler.Train().ok()) return 1;
  core::ColdEstimates estimates = sampler.AveragedEstimates();

  // The burstiest topic gets the Fig-5 treatment.
  int topic = 0;
  double best_spike = -1.0;
  for (int k = 0; k < estimates.K; ++k) {
    double spike = 0.0;
    for (int c = 0; c < estimates.C; ++c) {
      auto series = estimates.PsiSeries(k, c);
      spike += Variance(series);
    }
    if (spike > best_spike) {
      best_spike = spike;
      topic = k;
    }
  }
  auto summary = apps::SummarizeTopicDiffusion(estimates, topic, 5, 6, 10);
  std::printf("\n%s\n",
              apps::RenderTopicDiffusion(summary, &dataset.vocabulary).c_str());

  // Fig-6 style correlation: where does popularity fluctuate?
  auto points = apps::FluctuationScatter(estimates);
  auto means = apps::MeanFluctuationByInterestBin(
      points, {0.0, 1e-4, 1e-3, 1e-2, 1e-1});
  std::printf("mean psi fluctuation by interest bin "
              "(<1e-4, 1e-4..1e-3, 1e-3..1e-2, 1e-2..1e-1, >=1e-1):\n  ");
  for (double m : means) std::printf("%.3g ", m);
  std::printf("\n\n");

  // Fig-7 style lag for the focal topic.
  auto lag = apps::MeasureTimeLag(estimates, topic, /*num_high=*/2, 1e-4);
  std::printf("topic %d reaches highly-interested communities at slice %d\n"
              "and medium-interested communities at slice %d (lag %d);\n"
              "post-peak persistence: %d vs %d slices\n",
              topic, lag.high_peak_time, lag.medium_peak_time, lag.lag,
              lag.high_half_life, lag.medium_half_life);
  return 0;
}
