# Empty dependencies file for cold_core.
# This may be replaced when dependencies are built.
