#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>

#include "obs/metrics.h"
#include "util/logging.h"

namespace cold::obs {

namespace {

thread_local int tls_span_depth = 0;

// Sequential per-thread id, assigned on first span. 1-based so a
// default-constructed TraceEvent (tid 0) is distinguishable.
int ThreadTraceId() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

struct RingState {
  std::mutex mutex;
  std::vector<TraceEvent> events;  // circular once full
  size_t capacity = 0;
  size_t next = 0;   // insertion cursor
  bool wrapped = false;
};

RingState& Ring() {
  static RingState* state = new RingState();
  return *state;
}

std::atomic<bool> g_ring_enabled{false};

}  // namespace

void TraceRing::Enable(size_t capacity) {
  RingState& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.capacity = capacity > 0 ? capacity : 1;
  ring.events.clear();
  ring.events.reserve(ring.capacity);
  ring.next = 0;
  ring.wrapped = false;
  g_ring_enabled.store(true, std::memory_order_release);
}

void TraceRing::Disable() {
  g_ring_enabled.store(false, std::memory_order_release);
}

bool TraceRing::enabled() {
  return g_ring_enabled.load(std::memory_order_relaxed);
}

void TraceRing::Push(TraceEvent event) {
  if (!enabled()) return;
  RingState& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  if (ring.capacity == 0) return;
  if (ring.events.size() < ring.capacity) {
    ring.events.push_back(std::move(event));
    ring.next = ring.events.size() % ring.capacity;
    ring.wrapped = ring.events.size() == ring.capacity && ring.next == 0;
  } else {
    ring.events[ring.next] = std::move(event);
    ring.next = (ring.next + 1) % ring.capacity;
    ring.wrapped = true;
  }
}

std::vector<TraceEvent> TraceRing::Events() {
  RingState& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  if (!ring.wrapped || ring.events.size() < ring.capacity) {
    return ring.events;
  }
  std::vector<TraceEvent> out;
  out.reserve(ring.events.size());
  for (size_t i = 0; i < ring.events.size(); ++i) {
    out.push_back(ring.events[(ring.next + i) % ring.events.size()]);
  }
  return out;
}

void TraceRing::Clear() {
  RingState& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.events.clear();
  ring.next = 0;
  ring.wrapped = false;
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!Registry::enabled()) return;
  active_ = true;
  depth_ = ++tls_span_depth;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  auto end = std::chrono::steady_clock::now();
  --tls_span_depth;
  double seconds = std::chrono::duration<double>(end - start_).count();
  Registry::Global()
      .GetHistogram(std::string("cold/trace/") + name_)
      ->Observe(seconds);
  if (TraceRing::enabled()) {
    TraceEvent event;
    event.name = name_;
    event.start_seconds =
        std::chrono::duration<double>(start_ - ProcessStart()).count();
    event.duration_seconds = seconds;
    event.depth = depth_;
    event.tid = ThreadTraceId();
    TraceRing::Push(std::move(event));
  }
}

namespace {

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[128];
  for (const TraceEvent& event : events) {
    if (!first) os << ',';
    first = false;
    std::string name;
    AppendJsonEscaped(event.name, &name);
    // ts/dur are microseconds in the Trace Event Format.
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"depth\":%d}",
                  event.start_seconds * 1e6, event.duration_seconds * 1e6,
                  event.tid, event.depth);
    os << "{\"name\":\"" << name << "\",\"cat\":\"cold\"," << buf << '}';
  }
  os << "]}\n";
}

bool ExportChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    COLD_LOG(kError) << "cannot write trace to " << path;
    return false;
  }
  std::vector<TraceEvent> events = TraceRing::Events();
  WriteChromeTrace(events, out);
  COLD_LOG(kInfo) << "trace: " << events.size() << " events -> " << path;
  return out.good();
}

}  // namespace cold::obs
