// Versioned wire format for the distributed trainer (DESIGN.md §12).
//
// Every message is one length-prefixed frame:
//
//   [0..4)   magic 0x434F4C44 ("COLD")
//   [4..8)   wire version (1)
//   [8..12)  frame type (FrameType)
//   [12..16) sender rank
//   [16..24) superstep index the frame belongs to (0 for handshake)
//   [24..32) payload size in bytes
//   [32..36) payload CRC-32 (same polynomial/implementation as the
//            checkpoint files, util/fileio.h)
//   [36..)   payload
//
// Fields are host-endian, matching the checkpoint format's portability
// contract (homogeneous clusters; a mismatched peer is rejected by the
// magic/version check). Every payload is CRC-verified before decoding, so
// a torn or corrupted stream surfaces as IOError instead of poisoning the
// deterministic replica state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/parallel_sampler.h"
#include "dist/transport.h"
#include "util/status.h"

namespace cold::dist {

inline constexpr uint32_t kWireMagic = 0x434F4C44;  // "COLD"
inline constexpr uint32_t kWireVersion = 1;

/// Frames exchanged between worker nodes and the rank-0 coordinator.
enum class FrameType : uint32_t {
  kHello = 1,    // worker -> coordinator: config echo + resumable sweeps
  kWelcome = 2,  // coordinator -> worker: negotiated resume sweep
  kDelta = 3,    // worker -> coordinator: local SuperstepUpdate
  kGlobal = 4,   // coordinator -> worker: merged SuperstepUpdate
  kAbort = 5,    // either direction: unrecoverable error, tear down
  kHeartbeat = 6,  // either direction: liveness beacon, no payload; never
                   // touches model state and may interleave with any frame
};

/// \brief One decoded frame.
struct Frame {
  FrameType type = FrameType::kAbort;
  int32_t sender_rank = -1;
  uint64_t superstep = 0;
  std::string payload;
};

/// \brief Handshake payload: the worker's identity plus everything the
/// coordinator must verify is identical cluster-wide before training, and
/// the sweeps the worker could resume from (validated local checkpoints).
struct HelloPayload {
  int32_t rank = 0;
  int32_t num_nodes = 0;
  uint64_t seed = 0;
  int32_t iterations = 0;
  int32_t num_communities = 0;
  int32_t num_topics = 0;
  int32_t threads = 0;
  uint64_t data_fingerprint = 0;
  std::vector<int32_t> checkpoint_sweeps;
};

/// \brief Handshake reply: the sweep every node must resume from (-1 for a
/// fresh start).
struct WelcomePayload {
  int32_t resume_sweep = -1;
};

/// \brief Sends one frame (header + CRC'd payload) as a SINGLE transport
/// send, so concurrent senders (training thread + heartbeat thread) can
/// never interleave bytes inside a frame. `timeout_ms` bounds the whole
/// send (kDeadlineExceeded on expiry — the stream is then torn); < 0
/// blocks. Data frames (kDelta/kGlobal) consult the process-wide
/// NetFaultInjector, and every frame honors an armed stall.
cold::Status WriteFrame(Transport* transport, FrameType type,
                        int32_t sender_rank, uint64_t superstep,
                        std::string_view payload, int timeout_ms = -1);

/// \brief Receives and fully verifies one frame. `max_payload` bounds the
/// allocation a malformed size field can trigger; `timeout_ms` bounds the
/// whole frame (header + payload share one budget), < 0 blocks.
cold::Result<Frame> ReadFrame(Transport* transport,
                              uint64_t max_payload = uint64_t{1} << 31,
                              int timeout_ms = -1);

std::string EncodeHello(const HelloPayload& hello);
cold::Status DecodeHello(std::string_view payload, HelloPayload* out);

std::string EncodeWelcome(const WelcomePayload& welcome);
cold::Status DecodeWelcome(std::string_view payload, WelcomePayload* out);

std::string EncodeUpdate(const core::SuperstepUpdate& update);
cold::Status DecodeUpdate(std::string_view payload,
                          core::SuperstepUpdate* out);

}  // namespace cold::dist
