file(REMOVE_RECURSE
  "../bench/fig08_topics"
  "../bench/fig08_topics.pdb"
  "CMakeFiles/fig08_topics.dir/fig08_topics.cc.o"
  "CMakeFiles/fig08_topics.dir/fig08_topics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
