// Flat-file serialization of SocialDataset, so generated corpora can be
// inspected, versioned, and reloaded without regenerating (and so real data
// in the same format can be swapped in).
//
// Layout under <dir>/:
//   vocab.tsv      word per line (line number = WordId)
//   posts.tsv      author \t time \t space-separated word ids
//   followers.tsv  src \t dst            (dst follows src)
//   links.tsv      src \t dst            (interaction network)
//   retweets.tsv   author \t post \t r:<ids comma-sep> \t n:<ids comma-sep>
//
// Ground truth is not serialized; it exists only for synthetic data.
#pragma once

#include <string>

#include "data/social_dataset.h"
#include "util/status.h"

namespace cold::data {

/// \brief Writes `dataset` under directory `dir` (created if absent).
cold::Status SaveDataset(const SocialDataset& dataset, const std::string& dir);

/// \brief Reads a dataset previously written by SaveDataset. The returned
/// dataset has an empty GroundTruth.
cold::Result<SocialDataset> LoadDataset(const std::string& dir);

}  // namespace cold::data
