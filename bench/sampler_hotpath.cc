// Persistent throughput benchmark for the collapsed Gibbs hot path
// (tentpole of the sampler-performance PR; DESIGN.md §9).
//
// Measures, at two data scales:
//   - the topic kernel in isolation: the lgamma-collapsed TopicLogWeights
//     vs a per-token-log reference evaluated over every post, with the
//     max-abs log-weight disagreement (guard: they must agree to ~1e-9);
//   - serial full sweeps: per-sweep seconds, tokens/sec, links/sec series;
//   - the parallel trainer: per-superstep seconds and tokens/sec series.
//
// Results land as JSON in --out (default BENCH_sampler.json) so runs can
// be diffed across commits. --smoke shrinks everything to seconds of
// runtime, re-parses the emitted JSON and fails (exit 1) unless it is
// well-formed with positive throughput — wired up as the `bench_smoke`
// ctest.
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common.h"
#include "core/parallel_sampler.h"
#include "serve/json.h"
#include "util/math_util.h"

namespace {

using namespace cold;

/// Per-token-log reference for Eq. (3), matching the pre-optimization
/// kernel: every community/time term is a live std::log and the word and
/// length Dirichlet-multinomial terms are explicit ascending-factorial
/// loops. Evaluated against the sampler's current counters (including post
/// d), exactly like ColdGibbsSampler::TopicLogWeights.
void BaselineTopicLogWeights(const core::ColdGibbsSampler& sampler,
                             const text::PostStore& posts, text::PostId d,
                             int community, std::span<double> log_weights) {
  const core::ColdState& state = sampler.state();
  const core::ColdConfig& config = sampler.config();
  const int K = config.num_topics;
  const int T = posts.num_time_slices();
  const int V = state.V();
  const double alpha = config.ResolvedAlpha();
  const double beta = config.beta;
  const double epsilon = config.epsilon;
  const int t = posts.time(d);
  const int len = posts.length(d);
  auto word_counts = posts.WordCounts(d);

  for (int k = 0; k < K; ++k) {
    double lw = std::log(state.n_ck(community, k) + alpha) +
                std::log(state.n_ckt(community, k, t) + epsilon) -
                std::log(state.n_ck(community, k) + T * epsilon);
    for (const auto& [w, cnt] : word_counts) {
      double base = state.n_kv(k, w) + beta;
      for (int q = 0; q < cnt; ++q) lw += std::log(base + q);
    }
    double denom = state.n_k(k) + V * beta;
    for (int q = 0; q < len; ++q) lw -= std::log(denom + q);
    log_weights[static_cast<size_t>(k)] = lw;
  }
}

struct KernelResult {
  double optimized_tokens_per_sec = 0.0;
  double baseline_tokens_per_sec = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
};

/// Times one full pass of the topic kernel over every post (x `reps`),
/// optimized vs baseline, and records the worst log-weight disagreement.
KernelResult BenchKernel(core::ColdGibbsSampler* sampler,
                         const text::PostStore& posts, int reps) {
  const int K = sampler->config().num_topics;
  std::vector<double> lw_opt(static_cast<size_t>(K));
  std::vector<double> lw_ref(static_cast<size_t>(K));
  int64_t tokens = 0;
  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    tokens += posts.length(d);
  }

  KernelResult result;
  // Checksums defeat dead-code elimination of the timed loops.
  double sink = 0.0;
  double opt_seconds = 0.0, ref_seconds = 0.0;
  {
    ScopedTimer timer(opt_seconds);
    for (int r = 0; r < reps; ++r) {
      for (text::PostId d = 0; d < posts.num_posts(); ++d) {
        int c = sampler->state().post_community[static_cast<size_t>(d)];
        sampler->TopicLogWeights(d, c, lw_opt);
        sink += lw_opt[0];
      }
    }
  }
  {
    ScopedTimer timer(ref_seconds);
    for (int r = 0; r < reps; ++r) {
      for (text::PostId d = 0; d < posts.num_posts(); ++d) {
        int c = sampler->state().post_community[static_cast<size_t>(d)];
        BaselineTopicLogWeights(*sampler, posts, d, c, lw_ref);
        sink += lw_ref[0];
      }
    }
  }
  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    int c = sampler->state().post_community[static_cast<size_t>(d)];
    sampler->TopicLogWeights(d, c, lw_opt);
    BaselineTopicLogWeights(*sampler, posts, d, c, lw_ref);
    for (int k = 0; k < K; ++k) {
      result.max_abs_diff = std::max(
          result.max_abs_diff,
          std::abs(lw_opt[static_cast<size_t>(k)] -
                   lw_ref[static_cast<size_t>(k)]));
    }
  }
  if (sink == 12345.6789) std::printf(" ");  // keep `sink` observable
  double total = static_cast<double>(tokens) * reps;
  if (opt_seconds > 0.0) result.optimized_tokens_per_sec = total / opt_seconds;
  if (ref_seconds > 0.0) result.baseline_tokens_per_sec = total / ref_seconds;
  if (result.baseline_tokens_per_sec > 0.0) {
    result.speedup =
        result.optimized_tokens_per_sec / result.baseline_tokens_per_sec;
  }
  return result;
}

using bench::ToJsonArray;

/// One benchmark scale: dataset size multiplier + sweep/superstep counts.
struct Scale {
  const char* name;
  double data_scale;   // multiplies BenchDataConfig user count
  int serial_sweeps;
  int parallel_supersteps;
  int kernel_reps;
};

serve::Json RunScale(const Scale& scale) {
  data::SyntheticConfig data_config = bench::BenchDataConfig();
  data_config.num_users =
      std::max(20, static_cast<int>(data_config.num_users * scale.data_scale));
  data::SocialDataset dataset = bench::GenerateBenchData(data_config);
  int64_t tokens = 0;
  for (text::PostId d = 0; d < dataset.posts.num_posts(); ++d) {
    tokens += dataset.posts.length(d);
  }

  core::ColdConfig config = bench::BenchColdConfig(8, 12, /*iterations=*/200);
  config.vocab_size = dataset.vocabulary.size();

  serve::Json out = serve::Json::MakeObject();
  out.Set("name", scale.name);
  out.Set("num_posts", dataset.posts.num_posts());
  out.Set("num_links", static_cast<int64_t>(dataset.interactions.num_edges()));
  out.Set("tokens", tokens);

  // Serial: warm-up sweeps (so the counters reflect a burnt-in state, not
  // the uniform random init), then timed sweeps.
  core::ColdGibbsSampler sampler(config, dataset.posts, &dataset.interactions);
  if (auto st = sampler.Init(); !st.ok()) {
    std::fprintf(stderr, "init: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  const int warmup = std::max(1, scale.serial_sweeps / 4);
  for (int i = 0; i < warmup; ++i) sampler.RunIteration();

  serve::Json kernel = serve::Json::MakeObject();
  KernelResult kr = BenchKernel(&sampler, dataset.posts, scale.kernel_reps);
  kernel.Set("optimized_tokens_per_sec", kr.optimized_tokens_per_sec);
  kernel.Set("baseline_tokens_per_sec", kr.baseline_tokens_per_sec);
  kernel.Set("speedup", kr.speedup);
  kernel.Set("max_abs_log_weight_diff", kr.max_abs_diff);
  out.Set("kernel", kernel);
  std::printf(
      "%-8s kernel: %.3g tok/s optimized, %.3g tok/s baseline "
      "(%.2fx, max |dlw| %.2e)\n",
      scale.name, kr.optimized_tokens_per_sec, kr.baseline_tokens_per_sec,
      kr.speedup, kr.max_abs_diff);

  std::vector<double> sweep_seconds, tokens_per_sec, links_per_sec;
  for (int i = 0; i < scale.serial_sweeps; ++i) {
    double seconds = 0.0;
    {
      ScopedTimer timer(seconds);
      sampler.RunIteration();
    }
    sweep_seconds.push_back(seconds);
    if (seconds > 0.0) {
      tokens_per_sec.push_back(static_cast<double>(tokens) / seconds);
      links_per_sec.push_back(
          static_cast<double>(dataset.interactions.num_edges()) / seconds);
    }
  }
  serve::Json serial = serve::Json::MakeObject();
  serial.Set("sweep_seconds", ToJsonArray(sweep_seconds));
  serial.Set("tokens_per_second", ToJsonArray(tokens_per_sec));
  serial.Set("links_per_second", ToJsonArray(links_per_sec));
  out.Set("serial", serial);
  std::printf("%-8s serial: %.3g tok/s, %.3g links/s over %zu sweeps\n",
              scale.name,
              tokens_per_sec.empty() ? 0.0 : Mean(tokens_per_sec),
              links_per_sec.empty() ? 0.0 : Mean(links_per_sec),
              sweep_seconds.size());

  // Parallel: wall-clock per superstep on the multi-threaded GAS engine.
  core::ColdConfig parallel_config = config;
  parallel_config.iterations = scale.parallel_supersteps;
  parallel_config.burn_in = std::max(0, scale.parallel_supersteps - 1);
  engine::EngineOptions options;
  options.num_nodes = 4;
  core::ParallelColdTrainer trainer(parallel_config, dataset.posts,
                                    &dataset.interactions, options);
  if (auto st = trainer.Init(); !st.ok()) {
    std::fprintf(stderr, "parallel init: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  std::vector<double> superstep_seconds, parallel_tokens_per_sec;
  Stopwatch superstep_watch;
  trainer.SetSuperstepCallback([&](int) {
    double seconds = superstep_watch.ElapsedSeconds();
    superstep_watch.Restart();
    superstep_seconds.push_back(seconds);
    if (seconds > 0.0) {
      parallel_tokens_per_sec.push_back(static_cast<double>(tokens) / seconds);
    }
  });
  if (auto st = trainer.Train(); !st.ok()) {
    std::fprintf(stderr, "parallel train: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  serve::Json parallel = serve::Json::MakeObject();
  parallel.Set("superstep_seconds", ToJsonArray(superstep_seconds));
  parallel.Set("tokens_per_second", ToJsonArray(parallel_tokens_per_sec));
  out.Set("parallel", parallel);
  std::printf("%-8s parallel: %.3g tok/s over %zu supersteps\n", scale.name,
              parallel_tokens_per_sec.empty() ? 0.0
                                              : Mean(parallel_tokens_per_sec),
              superstep_seconds.size());
  return out;
}

/// Smoke validation: the emitted file must parse as JSON with the expected
/// shape and strictly positive kernel + sweep throughput.
bool ValidateJson(const std::string& path) {
  auto parsed = bench::LoadJsonFile(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "smoke: invalid JSON: %s\n",
                 parsed.status().ToString().c_str());
    return false;
  }
  const serve::Json& root = parsed.ValueOrDie();
  const serve::Json* scales = root.Find("scales");
  if (scales == nullptr || !scales->is_array() || scales->as_array().empty()) {
    std::fprintf(stderr, "smoke: missing scales array\n");
    return false;
  }
  for (const serve::Json& scale : scales->as_array()) {
    const serve::Json* kernel = scale.Find("kernel");
    const serve::Json* serial = scale.Find("serial");
    if (kernel == nullptr || serial == nullptr) {
      std::fprintf(stderr, "smoke: scale missing kernel/serial\n");
      return false;
    }
    const serve::Json* opt = kernel->Find("optimized_tokens_per_sec");
    if (opt == nullptr || !opt->is_number() || !(opt->as_number() > 0.0)) {
      std::fprintf(stderr, "smoke: kernel tokens/sec not > 0\n");
      return false;
    }
    const serve::Json* tps = serial->Find("tokens_per_second");
    if (tps == nullptr || !tps->is_array() || tps->as_array().empty() ||
        !(tps->as_array()[0].as_number() > 0.0)) {
      std::fprintf(stderr, "smoke: serial tokens/sec series not > 0\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cold;
  bench::QuietLogs();

  std::string out_path = "BENCH_sampler.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 1;
    }
  }
  bench::PrintHeader("Sampler hot path: tokens/sec and sweep seconds");

  std::vector<Scale> scales;
  if (smoke) {
    scales.push_back({"smoke", 0.05, 3, 2, 1});
  } else {
    scales.push_back({"small", 0.25, 12, 6, 3});
    scales.push_back({"medium", 1.0, 8, 4, 2});
  }

  serve::Json root = serve::Json::MakeObject();
  root.Set("bench", "sampler_hotpath");
  serve::Json scale_array = serve::Json::MakeArray();
  for (const Scale& scale : scales) scale_array.Append(RunScale(scale));
  root.Set("scales", scale_array);

  if (!bench::WriteJsonFile(root, out_path)) return 1;
  std::printf("results written to %s\n", out_path.c_str());

  if (smoke && !ValidateJson(out_path)) return 1;
  bench::DumpTelemetryIfRequested();
  return 0;
}
