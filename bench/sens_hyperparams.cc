// §6.5 claim (results deferred to the appendix and omitted there for
// space): "Dirichlet hyper-parameters have low impact on model performance
// ... our model is insensitive to these hyper-parameters." This bench
// regenerates that omitted study: sweep rho, alpha, beta, epsilon and kappa
// one at a time and report perplexity, link AUC and diffusion AUC.
#include "common.h"
#include "core/predictor.h"

namespace {

using namespace cold;

struct Scores {
  double perplexity;
  double link_auc;
  double diffusion_auc;
};

Scores Evaluate(const core::ColdConfig& config,
                const data::SocialDataset& dataset,
                const data::PostSplit& post_split,
                const data::LinkSplit& link_split,
                const data::RetweetSplit& retweet_split) {
  Scores scores;
  {
    core::ColdEstimates est =
        bench::TrainCold(config, post_split.train, &dataset.interactions);
    scores.perplexity = core::ColdPredictor(est).Perplexity(post_split.test);
  }
  {
    core::ColdEstimates est =
        bench::TrainCold(config, dataset.posts, &link_split.train);
    core::ColdPredictor predictor(est);
    scores.link_auc = bench::LinkAuc(link_split, [&](int a, int b) {
      return predictor.LinkProbability(a, b);
    });
  }
  {
    core::ColdEstimates est = bench::TrainCold(
        config, dataset.posts, &retweet_split.train_interactions);
    core::ColdPredictor predictor(est, 5);
    scores.diffusion_auc = bench::DiffusionAuc(
        retweet_split.test, dataset.posts, [&](int a, int b, auto words) {
          return predictor.DiffusionProbability(a, b, words);
        });
  }
  return scores;
}

}  // namespace

int main() {
  bench::QuietLogs();
  bench::PrintHeader(
      "§6.5: hyper-parameter sensitivity (perplexity / link AUC / diff AUC)");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  data::PostSplit post_split = data::SplitPosts(dataset.posts, 0.2, 101, 0);
  data::LinkSplit link_split =
      data::SplitLinks(dataset.interactions, 0.2, 3.0, 103, 0);
  data::RetweetSplit retweet_split = data::SplitRetweets(dataset, 0.2, 107, 0);

  const int iters = 100;
  std::printf("%-22s %12s %10s %10s\n", "setting", "perplexity", "link",
              "diffusion");
  auto report = [&](const std::string& name, const core::ColdConfig& config) {
    Scores s =
        Evaluate(config, dataset, post_split, link_split, retweet_split);
    std::printf("%-22s %12.1f %10.4f %10.4f\n", name.c_str(), s.perplexity,
                s.link_auc, s.diffusion_auc);
  };

  report("baseline", bench::BenchColdConfig(8, 12, iters));
  for (double rho : {0.1, 1.0, 3.0}) {
    core::ColdConfig config = bench::BenchColdConfig(8, 12, iters);
    config.rho = rho;
    report("rho=" + std::to_string(rho).substr(0, 4), config);
  }
  for (double alpha : {0.1, 1.0, 3.0}) {
    core::ColdConfig config = bench::BenchColdConfig(8, 12, iters);
    config.alpha = alpha;
    report("alpha=" + std::to_string(alpha).substr(0, 4), config);
  }
  for (double beta : {0.005, 0.05, 0.2}) {
    core::ColdConfig config = bench::BenchColdConfig(8, 12, iters);
    config.beta = beta;
    report("beta=" + std::to_string(beta).substr(0, 5), config);
  }
  for (double epsilon : {0.005, 0.05, 0.2}) {
    core::ColdConfig config = bench::BenchColdConfig(8, 12, iters);
    config.epsilon = epsilon;
    report("epsilon=" + std::to_string(epsilon).substr(0, 5), config);
  }
  for (double kappa : {3.0, 30.0}) {
    core::ColdConfig config = bench::BenchColdConfig(8, 12, iters);
    config.kappa = kappa;
    report("kappa=" + std::to_string(kappa).substr(0, 4), config);
  }

  std::printf(
      "\n(paper claim: performance is stable across a broad range of\n"
      " Dirichlet hyper-parameters; kappa is the one deliberately tunable\n"
      " weight)\n");
  return 0;
}
