file(REMOVE_RECURSE
  "../bench/table2_methods"
  "../bench/table2_methods.pdb"
  "CMakeFiles/table2_methods.dir/table2_methods.cc.o"
  "CMakeFiles/table2_methods.dir/table2_methods.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
