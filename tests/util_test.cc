#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace cold {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad k");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status a = Status::Internal("boom");
  Status b = a;  // shared rep
  EXPECT_EQ(a, b);
}

Status FailingHelper() { return Status::NotFound("missing"); }

Status UsesReturnNotOk() {
  COLD_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Result --

Result<int> MakeValue(bool succeed) {
  if (!succeed) return Status::IOError("nope");
  return 7;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = MakeValue(true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = MakeValue(false);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

Result<int> UsesAssignOrReturn(bool succeed) {
  int v;
  COLD_ASSIGN_OR_RETURN(v, MakeValue(succeed));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnPropagatesAndAssigns) {
  EXPECT_EQ(*UsesAssignOrReturn(true), 8);
  EXPECT_EQ(UsesAssignOrReturn(false).status().code(), StatusCode::kIOError);
}

TEST(ResultTest, MoveValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------------------- RNG --

TEST(Pcg32Test, Deterministic) {
  Pcg32 a(123, 5), b(123, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(Pcg32Test, StreamsDiffer) {
  Pcg32 a(123, 1), b(123, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg32Test, BoundedInRange) {
  Pcg32 rng(77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RandomSamplerTest, UniformMoments) {
  RandomSampler s(1);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double u = s.Uniform();
    sum += u;
    sum_sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_NEAR(sum_sq / n - (sum / n) * (sum / n), 1.0 / 12.0, 0.01);
}

TEST(RandomSamplerTest, NormalMoments) {
  RandomSampler s(2);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = s.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RandomSamplerTest, GammaMeanMatchesShape) {
  RandomSampler s(3);
  for (double shape : {0.5, 1.0, 3.0, 10.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += s.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.06) << "shape=" << shape;
  }
}

TEST(RandomSamplerTest, BetaMean) {
  RandomSampler s(4);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += s.Beta(2.0, 6.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(RandomSamplerTest, CategoricalFrequencies) {
  RandomSampler s(5);
  std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[static_cast<size_t>(s.Categorical(w))]++;
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(i)]) / n,
                (i + 1) / 10.0, 0.02);
  }
}

TEST(RandomSamplerTest, LogCategoricalMatchesCategorical) {
  RandomSampler s1(6), s2(6);
  std::vector<double> w = {0.1, 0.7, 0.2};
  std::vector<double> lw = {std::log(0.1) + 100, std::log(0.7) + 100,
                            std::log(0.2) + 100};  // arbitrary shift
  std::vector<int> c1(3, 0), c2(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    c1[static_cast<size_t>(s1.Categorical(w))]++;
    c2[static_cast<size_t>(s2.LogCategorical(lw))]++;
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(c1[static_cast<size_t>(i)], c2[static_cast<size_t>(i)],
                n * 0.02);
  }
}

TEST(RandomSamplerTest, CategoricalOvershootingTotalStaysUnbiased) {
  // Regression: a caller-supplied total larger than the actual mass used to
  // dump every draw that fell past the CDF scan onto the last
  // positive-weight bucket (index 2 here would absorb ~0.75 instead of
  // 0.5). The rescan against the internally accumulated sum must keep the
  // draw distributed by the normalized weights for any overshoot.
  std::vector<double> w = {1.0, 1.0, 2.0};  // true total = 4
  for (double total : {8.0, 400.0}) {
    RandomSampler s(21);
    std::vector<int> counts(3, 0);
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
      counts[static_cast<size_t>(s.Categorical(w, total))]++;
    }
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02)
        << "total=" << total;
    EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02)
        << "total=" << total;
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.50, 0.02)
        << "total=" << total;
  }
}

TEST(RandomSamplerTest, CategoricalExactTotalTrajectoryUnchanged) {
  // The overshoot fix must not consume extra RNG draws or change results
  // when the supplied total is correct: same seed, with and without an
  // explicit (exact) total, must produce the same sequence.
  std::vector<double> w = {0.5, 2.5, 1.0};
  RandomSampler a(33), b(33);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(a.Categorical(w), b.Categorical(w, 4.0)) << "draw " << i;
  }
}

TEST(RandomSamplerTest, CategoricalDegenerateWeightsFallBackToUniform) {
  RandomSampler s(11);
  // All-zero, all-NaN and +inf-contaminated weights must never index out
  // of range, and the documented fallback is the uniform distribution.
  std::vector<double> zeros(4, 0.0);
  std::vector<double> nans(4, std::numeric_limits<double>::quiet_NaN());
  std::vector<double> infs = {1.0, std::numeric_limits<double>::infinity(),
                              1.0, 1.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    int a = s.Categorical(zeros);
    int b = s.Categorical(nans);
    int c = s.Categorical(infs);
    ASSERT_GE(a, 0);
    ASSERT_LT(a, 4);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 4);
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 4);
    counts[static_cast<size_t>(a)]++;
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(i)]) / n, 0.25,
                0.02);
  }
}

TEST(RandomSamplerTest, LogCategoricalDegenerateWeightsFallBackToUniform) {
  RandomSampler s(12);
  std::vector<double> all_neg_inf(3,
                                  -std::numeric_limits<double>::infinity());
  std::vector<double> with_nan = {0.0,
                                  std::numeric_limits<double>::quiet_NaN(),
                                  0.0};
  std::vector<int> counts(3, 0);
  const int n = 15000;
  for (int i = 0; i < n; ++i) {
    int a = s.LogCategorical(all_neg_inf);
    int b = s.LogCategorical(with_nan);
    ASSERT_GE(a, 0);
    ASSERT_LT(a, 3);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 3);
    counts[static_cast<size_t>(a)]++;
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(i)]) / n,
                1.0 / 3.0, 0.02);
  }
}

TEST(RandomSamplerTest, DirichletSumsToOne) {
  RandomSampler s(7);
  for (int rep = 0; rep < 50; ++rep) {
    auto x = s.SymmetricDirichlet(0.2, 10);
    double total = std::accumulate(x.begin(), x.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (double v : x) EXPECT_GE(v, 0.0);
  }
}

TEST(RandomSamplerTest, DirichletConcentrationControlsSparsity) {
  RandomSampler s(8);
  // Small alpha => most mass on one component (high max), large alpha =>
  // flat.
  double max_sparse = 0.0, max_flat = 0.0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    auto sparse = s.SymmetricDirichlet(0.05, 10);
    auto flat = s.SymmetricDirichlet(50.0, 10);
    max_sparse += *std::max_element(sparse.begin(), sparse.end());
    max_flat += *std::max_element(flat.begin(), flat.end());
  }
  EXPECT_GT(max_sparse / reps, 0.7);
  EXPECT_LT(max_flat / reps, 0.25);
}

TEST(RandomSamplerTest, MultinomialTotals) {
  RandomSampler s(9);
  std::vector<double> p = {0.2, 0.3, 0.5};
  auto counts = s.Multinomial(1000, p);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 1000);
}

TEST(RandomSamplerTest, SampleWithoutReplacementDistinct) {
  RandomSampler s(10);
  auto picks = s.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(picks.size(), 10u);
  std::sort(picks.begin(), picks.end());
  EXPECT_TRUE(std::adjacent_find(picks.begin(), picks.end()) == picks.end());
  for (int v : picks) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RandomSamplerTest, ShufflePreservesElements) {
  RandomSampler s(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  s.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RandomSamplerTest, ZipfTableMonotoneCdf) {
  auto cdf = RandomSampler::MakeZipfTable(100, 1.0);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  // Head-heavy: first 10 of 100 items carry most of the mass.
  EXPECT_GT(cdf[9], 0.5);
}

// ------------------------------------------------------------------ math --

TEST(MathTest, LogSumExpBasics) {
  std::vector<double> x = {std::log(1.0), std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(LogSumExp(x), std::log(6.0), 1e-12);
  std::vector<double> shifted = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(shifted), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(MathTest, NormalizeInPlace) {
  std::vector<double> x = {1.0, 3.0};
  double sum = NormalizeInPlace(x);
  EXPECT_DOUBLE_EQ(sum, 4.0);
  EXPECT_DOUBLE_EQ(x[0], 0.25);
  EXPECT_DOUBLE_EQ(x[1], 0.75);
  std::vector<double> zeros = {0.0, 0.0};
  NormalizeInPlace(zeros);
  EXPECT_DOUBLE_EQ(zeros[0], 0.5);
}

TEST(MathTest, MeanVarianceMedian) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(x), 2.5);
  EXPECT_DOUBLE_EQ(Variance(x), 1.25);
  EXPECT_DOUBLE_EQ(Median(x), 2.5);
  std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Median(odd), 3.0);
}

TEST(MathTest, EntropyAndKl) {
  std::vector<double> uniform = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(Entropy(uniform), std::log(4.0), 1e-12);
  std::vector<double> point = {1.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(Entropy(point), 0.0, 1e-12);
  EXPECT_NEAR(KlDivergence(uniform, uniform), 0.0, 1e-12);
  EXPECT_GT(KlDivergence(point, uniform), 0.0);
}

TEST(MathTest, Distances) {
  std::vector<double> a = {1.0, 0.0};
  std::vector<double> b = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 2.0);
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
}

TEST(MathTest, TopKIndices) {
  std::vector<double> x = {0.1, 0.9, 0.4, 0.9, 0.2};
  auto top = TopKIndices(x, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);  // tie broken by lower index
  EXPECT_EQ(top[1], 3);
  EXPECT_EQ(top[2], 2);
  EXPECT_EQ(TopKIndices(x, 100).size(), x.size());
}

TEST(MathTest, DigammaRecurrence) {
  // digamma(x+1) = digamma(x) + 1/x.
  for (double x : {0.3, 1.0, 2.5, 7.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-9) << x;
  }
  // digamma(1) = -EulerGamma.
  EXPECT_NEAR(Digamma(1.0), -0.57721566490153286, 1e-9);
}

// ----------------------------------------------------------- thread pool --

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WorkerIndexWithinBounds) {
  ThreadPool pool(3);
  std::atomic<bool> ok{true};
  pool.ParallelFor(100, [&](size_t, size_t, size_t w) {
    if (w >= pool.num_threads()) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch watch;
  double t0 = watch.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(watch.ElapsedSeconds(), t0);
  EXPECT_GT(sink, 0.0);
}

TEST(ScopedTimerTest, AccumulatesAcrossScopes) {
  double total = 0.0;
  {
    ScopedTimer timer(total);
  }
  double after_first = total;
  EXPECT_GE(after_first, 0.0);
  {
    ScopedTimer timer(total);
    double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink += i;
    EXPECT_GT(sink, 0.0);
  }
  // The second scope adds on top of (never overwrites) the first.
  EXPECT_GE(total, after_first);
}

TEST(LoggerTest, SinkCapturesMessagesAboveLevel) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  Logger::SetSink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  LogLevel saved = Logger::GetLevel();
  Logger::SetLevel(LogLevel::kWarning);
  COLD_LOG(kInfo) << "filtered out";
  COLD_LOG(kWarning) << "kept " << 42;
  Logger::SetLevel(saved);
  Logger::SetSink({});  // restore the stderr default
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarning);
  EXPECT_EQ(captured[0].second, "kept 42");
}

TEST(LoggerTest, MonotonicSecondsAdvances) {
  double a = Logger::MonotonicSeconds();
  double b = Logger::MonotonicSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

// ------------------------------------------------------------- simd ------

TEST(SimdTest, DispatchNameIsKnown) {
  const std::string name = simd::DispatchName();
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
  EXPECT_EQ(simd::Avx2Enabled(), name == "avx2");
}

/// Deterministic pseudo-random fill that doesn't touch the RNG under test.
std::vector<double> SimdTestVector(size_t n, double lo, double hi,
                                   uint64_t salt) {
  std::vector<double> x(n);
  Pcg32 g(salt, 5);
  for (size_t i = 0; i < n; ++i) x[i] = lo + (hi - lo) * g.NextDouble();
  return x;
}

TEST(SimdTest, AddSubRowsMatchesScalarExactly) {
  // The vector lanes compute the same a[i] + b[i] - c[i] expression, so the
  // result must be bit-identical to the scalar loop at every size (tails,
  // sub-width inputs, empty).
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                   size_t{8}, size_t{13}, size_t{32}, size_t{100}}) {
    auto a = SimdTestVector(n, -50.0, 50.0, 1000 + n);
    auto b = SimdTestVector(n, -5.0, 5.0, 2000 + n);
    auto c = SimdTestVector(n, -5.0, 5.0, 3000 + n);
    std::vector<double> got(n, 0.0);
    simd::AddSubRows(a.data(), b.data(), c.data(), got.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], a[i] + b[i] - c[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdTest, AccumulateMatchesScalarExactly) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{8}, size_t{21},
                   size_t{64}}) {
    auto dst0 = SimdTestVector(n, -10.0, 10.0, 4000 + n);
    auto src = SimdTestVector(n, -1.0, 1.0, 5000 + n);
    std::vector<double> got = dst0;
    simd::Accumulate(got.data(), src.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], dst0[i] + src[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdTest, MaxValueMatchesStdMaxElement) {
  for (size_t n : {size_t{1}, size_t{2}, size_t{7}, size_t{8}, size_t{9},
                   size_t{31}, size_t{200}}) {
    auto x = SimdTestVector(n, -1e6, 1e6, 6000 + n);
    EXPECT_EQ(simd::MaxValue(x.data(), n), *std::max_element(x.begin(), x.end()))
        << "n=" << n;
  }
  // -inf entries (log-weights of zero-probability topics) must not confuse
  // the reduction; an all--inf row must return -inf.
  std::vector<double> with_ninf = SimdTestVector(40, -100.0, 0.0, 42);
  const double ninf = -std::numeric_limits<double>::infinity();
  with_ninf[0] = ninf;
  with_ninf[17] = ninf;
  with_ninf[39] = ninf;
  EXPECT_EQ(simd::MaxValue(with_ninf.data(), with_ninf.size()),
            *std::max_element(with_ninf.begin(), with_ninf.end()));
  std::vector<double> all_ninf(16, ninf);
  EXPECT_EQ(simd::MaxValue(all_ninf.data(), all_ninf.size()), ninf);
}

}  // namespace
}  // namespace cold
