#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "core/cold.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace cold::obs {
namespace {

// ------------------------------------------------------ JSON validation --
// Minimal recursive-descent JSON syntax checker, enough to assert that
// DumpJson round-trips through a real parser's grammar.

class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : text_(std::move(text)) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string text_;
  size_t pos_ = 0;
};

// --------------------------------------------------------------- Counter --

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Registry::Enable();
  Counter* counter =
      Registry::Global().GetCounter("cold/obs_test/concurrent_counter");
  counter->Reset();
  constexpr size_t kItems = 100000;
  ThreadPool pool(8);
  pool.ParallelFor(kItems, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) counter->Increment();
  });
  EXPECT_EQ(counter->Value(), static_cast<int64_t>(kItems));

  // A second wave of weighted increments from explicit Submit tasks.
  for (int t = 0; t < 8; ++t) {
    pool.Submit([&] { counter->Increment(1000); });
  }
  pool.Wait();
  EXPECT_EQ(counter->Value(), static_cast<int64_t>(kItems) + 8000);
}

TEST(CounterTest, DisabledIncrementsAreDropped) {
  Counter* counter =
      Registry::Global().GetCounter("cold/obs_test/disabled_counter");
  counter->Reset();
  Registry::Disable();
  counter->Increment(42);
  Registry::Enable();
  EXPECT_EQ(counter->Value(), 0);
  counter->Increment(7);
  EXPECT_EQ(counter->Value(), 7);
}

TEST(GaugeTest, SetAndAdd) {
  Registry::Enable();
  Gauge* gauge = Registry::Global().GetGauge("cold/obs_test/gauge");
  gauge->Set(1.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 1.5);
  gauge->Add(0.25);
  gauge->Add(0.25);
  EXPECT_DOUBLE_EQ(gauge->Value(), 2.0);
}

TEST(RegistryTest, SameNameAndLabelsReturnsSameInstance) {
  auto& registry = Registry::Global();
  Counter* a = registry.GetCounter("cold/obs_test/family", {{"x", "1"}});
  Counter* b = registry.GetCounter("cold/obs_test/family", {{"x", "1"}});
  Counter* c = registry.GetCounter("cold/obs_test/family", {{"x", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RegistryTest, KindMismatchReturnsDetachedDummy) {
  auto& registry = Registry::Global();
  registry.GetCounter("cold/obs_test/kind_clash");
  Gauge* dummy = registry.GetGauge("cold/obs_test/kind_clash");
  ASSERT_NE(dummy, nullptr);
  dummy->Set(5.0);  // must not crash; value is detached from the registry
  TelemetrySnapshot snapshot = registry.Snapshot();
  for (const auto& g : snapshot.gauges) {
    EXPECT_NE(g.name, "cold/obs_test/kind_clash");
  }
}

// ------------------------------------------------------------- Histogram --

TEST(HistogramTest, LogScaleBucketBoundaries) {
  HistogramOptions options;
  options.min_upper_bound = 1e-3;
  options.growth = 2.0;
  options.num_buckets = 4;
  Histogram hist(options);
  ASSERT_EQ(hist.upper_bounds().size(), 4u);
  EXPECT_DOUBLE_EQ(hist.upper_bounds()[0], 1e-3);
  EXPECT_DOUBLE_EQ(hist.upper_bounds()[1], 2e-3);
  EXPECT_DOUBLE_EQ(hist.upper_bounds()[2], 4e-3);
  EXPECT_DOUBLE_EQ(hist.upper_bounds()[3], 8e-3);

  Registry::Enable();
  hist.Observe(0.5e-3);  // bucket 0
  hist.Observe(1e-3);    // bucket 0 (le is inclusive)
  hist.Observe(1.5e-3);  // bucket 1
  hist.Observe(8e-3);    // bucket 3
  hist.Observe(9e-3);    // overflow
  hist.Observe(123.0);   // overflow
  std::vector<int64_t> counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(counts[4], 2);
  EXPECT_EQ(hist.count(), 6);
  EXPECT_NEAR(hist.sum(), 0.5e-3 + 1e-3 + 1.5e-3 + 8e-3 + 9e-3 + 123.0,
              1e-12);
}

TEST(HistogramTest, ConcurrentObservationsSumExactly) {
  Registry::Enable();
  Histogram* hist = Registry::Global().GetHistogram(
      "cold/obs_test/concurrent_hist", {},
      HistogramOptions{1e-6, 2.0, 8});
  hist->Reset();
  constexpr size_t kItems = 50000;
  ThreadPool pool(8);
  pool.ParallelFor(kItems, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) hist->Observe(1e-5);
  });
  EXPECT_EQ(hist->count(), static_cast<int64_t>(kItems));
  int64_t bucketed = 0;
  for (int64_t c : hist->bucket_counts()) bucketed += c;
  EXPECT_EQ(bucketed, static_cast<int64_t>(kItems));
}

// ------------------------------------------------------------- Exporters --

TEST(ExportTest, JsonSnapshotParses) {
  auto& registry = Registry::Global();
  Registry::Enable();
  registry.GetCounter("cold/obs_test/json_counter")->Increment(3);
  registry.GetGauge("cold/obs_test/json_gauge", {{"phase", "post"}})
      ->Set(0.125);
  registry
      .GetHistogram("cold/obs_test/json_hist", {},
                    HistogramOptions{1e-3, 10.0, 3})
      ->Observe(0.5);
  std::ostringstream os;
  registry.DumpJson(os);
  std::string json = os.str();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"cold/obs_test/json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"post\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
}

TEST(ExportTest, JsonEscapesSpecialCharacters) {
  TelemetrySnapshot snapshot;
  snapshot.counters.push_back(
      {"weird\"name\\with\nstuff", {{"k", "v\"q"}}, 1});
  std::ostringstream os;
  DumpJson(snapshot, os);
  JsonChecker checker(os.str());
  EXPECT_TRUE(checker.Valid()) << os.str();
}

TEST(ExportTest, PrometheusTextFormat) {
  auto& registry = Registry::Global();
  Registry::Enable();
  registry.GetCounter("cold/obs_test/prom_counter")->Increment(5);
  registry.GetGauge("cold/obs_test/prom_gauge", {{"phase", "link"}})
      ->Set(2.5);
  Histogram* hist = registry.GetHistogram(
      "cold/obs_test/prom_hist", {}, HistogramOptions{1e-3, 10.0, 3});
  hist->Reset();
  hist->Observe(5e-4);
  hist->Observe(5e-3);
  hist->Observe(100.0);

  std::ostringstream os;
  registry.DumpPrometheusText(os);
  std::string text = os.str();

  // Every line is either a comment or `name{labels} value`.
  std::regex sample_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_:][a-zA-Z0-9_:]*="(\\.|[^"\\])*"(,[a-zA-Z_:][a-zA-Z0-9_:]*="(\\.|[^"\\])*")*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$)");
  std::istringstream lines(text);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_TRUE(std::regex_match(line, sample_re)) << "bad line: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0);

  // Sanitized names, cumulative histogram buckets, sum/count series.
  EXPECT_NE(text.find("cold_obs_test_prom_counter 5"), std::string::npos);
  EXPECT_NE(text.find("cold_obs_test_prom_gauge{phase=\"link\"} 2.5"),
            std::string::npos);
  EXPECT_NE(text.find("cold_obs_test_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("cold_obs_test_prom_hist_count 3"), std::string::npos);
}

// ----------------------------------------------------------- Trace spans --

TEST(TraceTest, NestedSpansAttributeTimeToTheRightFamily) {
  Registry::Enable();
  auto& registry = Registry::Global();
  Histogram* outer = registry.GetHistogram("cold/trace/obs_test/outer");
  Histogram* inner = registry.GetHistogram("cold/trace/obs_test/inner");
  outer->Reset();
  inner->Reset();
  TraceRing::Enable(16);
  {
    COLD_TRACE_SPAN("obs_test/outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      COLD_TRACE_SPAN("obs_test/inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_EQ(outer->count(), 1);
  EXPECT_EQ(inner->count(), 1);
  // The outer span covers the inner one.
  EXPECT_GE(outer->sum(), inner->sum());
  EXPECT_GT(inner->sum(), 0.0);

  // Ring events carry nesting depth; the inner span completes first.
  std::vector<TraceEvent> events = TraceRing::Events();
  TraceRing::Disable();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "obs_test/inner");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].name, "obs_test/outer");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_LE(events[1].start_seconds, events[0].start_seconds);
}

TEST(TraceTest, RingBufferKeepsNewestEvents) {
  TraceRing::Enable(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent event;
    event.name = "e";
    event.name += std::to_string(i);
    event.start_seconds = i;
    TraceRing::Push(std::move(event));
  }
  std::vector<TraceEvent> events = TraceRing::Events();
  TraceRing::Disable();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
}

TEST(TraceTest, DisabledRegistryMakesSpansFree) {
  auto& registry = Registry::Global();
  Histogram* hist = registry.GetHistogram("cold/trace/obs_test/disabled");
  hist->Reset();
  Registry::Disable();
  {
    COLD_TRACE_SPAN("obs_test/disabled");
  }
  Registry::Enable();
  EXPECT_EQ(hist->count(), 0);
}

// ------------------------------------------------- End-to-end with COLD --

data::SocialDataset SmallData() {
  data::SyntheticConfig config;
  config.num_users = 60;
  config.num_communities = 3;
  config.num_topics = 4;
  config.num_time_slices = 6;
  config.core_words_per_topic = 8;
  config.background_words = 40;
  config.posts_per_user = 5.0;
  config.words_per_post = 6.0;
  config.follows_per_user = 5;
  config.seed = 7;
  data::SyntheticSocialGenerator gen(config);
  return std::move(gen.Generate()).ValueOrDie();
}

core::ColdConfig SmallModelConfig(int iterations) {
  core::ColdConfig config;
  config.num_communities = 3;
  config.num_topics = 4;
  config.iterations = iterations;
  config.burn_in = iterations - 1;
  config.rho = 0.5;
  config.seed = 23;
  return config;
}

TEST(GibbsTelemetryTest, PerSweepMetricsPopulated) {
  Registry::Enable();
  auto& registry = Registry::Global();
  registry.Reset();
  data::SocialDataset ds = SmallData();
  core::ColdGibbsSampler sampler(SmallModelConfig(5), ds.posts,
                                 &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  int callbacks = 0;
  sampler.SetSweepCallback([&](int sweep) {
    ++callbacks;
    EXPECT_EQ(sweep, callbacks);
  });
  ASSERT_TRUE(sampler.Train().ok());
  EXPECT_EQ(callbacks, 5);

  EXPECT_EQ(registry.GetCounter("cold/gibbs/sweeps")->Value(), 5);
  // Every token is resampled every sweep.
  EXPECT_EQ(registry.GetCounter("cold/gibbs/tokens_resampled")->Value(),
            5 * ds.posts.num_tokens());
  EXPECT_GT(registry.GetGauge("cold/gibbs/sweep_seconds")->Value(), 0.0);
  double post_s =
      registry.GetGauge("cold/gibbs/phase_seconds", {{"phase", "post"}})
          ->Value();
  double link_s =
      registry.GetGauge("cold/gibbs/phase_seconds", {{"phase", "link"}})
          ->Value();
  EXPECT_GT(post_s, 0.0);
  EXPECT_GT(link_s, 0.0);
  EXPECT_NEAR(registry.GetGauge("cold/gibbs/sweep_seconds")->Value(),
              post_s + link_s, 1e-12);
  double switch_rate =
      registry.GetGauge("cold/gibbs/community_switch_rate")->Value();
  EXPECT_GE(switch_rate, 0.0);
  EXPECT_LE(switch_rate, 1.0);
  // The sweep span fed the trace histogram.
  EXPECT_EQ(registry.GetHistogram("cold/trace/gibbs/sweep")->count(), 5);
}

TEST(GibbsTelemetryTest, HotPathOverheadIsSmall) {
  // Acceptance: instrumentation adds < 5% to a 50-sweep serial train. Wall
  // clocks on shared CI are noisy, so assert loosely (50% headroom) and
  // take the best of two runs per variant.
  data::SocialDataset ds = SmallData();
  auto train_seconds = [&]() {
    core::ColdGibbsSampler sampler(SmallModelConfig(50), ds.posts,
                                   &ds.interactions);
    EXPECT_TRUE(sampler.Init().ok());
    Stopwatch watch;
    EXPECT_TRUE(sampler.Train().ok());
    return watch.ElapsedSeconds();
  };
  double disabled = 1e100, enabled = 1e100;
  for (int rep = 0; rep < 2; ++rep) {
    Registry::Enable();
    enabled = std::min(enabled, train_seconds());
    Registry::Disable();
    disabled = std::min(disabled, train_seconds());
  }
  Registry::Enable();
  EXPECT_LT(enabled, disabled * 1.5 + 0.02)
      << "instrumented=" << enabled << "s disabled=" << disabled << "s";
}

}  // namespace
}  // namespace cold::obs
