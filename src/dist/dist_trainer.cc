#include "dist/dist_trainer.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "dist/delta_codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace cold::dist {

namespace {

/// cold/dist/* telemetry: real bytes on the wire (vs the engine's
/// simulated comm_bytes), frame counts, and barrier-wait distribution so
/// SimulatedWallSeconds projections can be validated against measurement.
struct DistMetrics {
  obs::Counter* comm_bytes;
  obs::Counter* frames;
  obs::Counter* heartbeats;
  obs::Counter* frame_timeouts;
  obs::Counter* restarts;
  obs::Histogram* barrier_wait_seconds;
  obs::Gauge* superstep;
};

DistMetrics& Metrics() {
  auto& registry = obs::Registry::Global();
  static DistMetrics metrics{
      registry.GetCounter("cold/dist/comm_bytes"),
      registry.GetCounter("cold/dist/frames_total"),
      registry.GetCounter("cold/dist/heartbeats_total"),
      registry.GetCounter("cold/dist/frame_timeouts_total"),
      registry.GetCounter("cold/dist/restarts_total"),
      registry.GetHistogram("cold/dist/barrier_wait_seconds"),
      registry.GetGauge("cold/dist/superstep")};
  return metrics;
}

using LivenessClock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped at 0.
int RemainingMs(LivenessClock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - LivenessClock::now())
                  .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

cold::Status ExpectFrame(const Frame& frame, FrameType want,
                         uint64_t want_superstep) {
  if (frame.type == FrameType::kAbort) {
    return cold::Status::FailedPrecondition(
        "peer " + std::to_string(frame.sender_rank) +
        " aborted: " + frame.payload);
  }
  if (frame.type != want) {
    return cold::Status::IOError(
        "unexpected frame type " +
        std::to_string(static_cast<uint32_t>(frame.type)) + " from rank " +
        std::to_string(frame.sender_rank));
  }
  if (frame.superstep != want_superstep) {
    return cold::Status::IOError(
        "superstep desync: rank " + std::to_string(frame.sender_rank) +
        " is at " + std::to_string(frame.superstep) + ", expected " +
        std::to_string(want_superstep));
  }
  return cold::Status::OK();
}

/// Best-effort abort notification; the peer may already be gone, and a
/// hung peer must not be allowed to wedge our own teardown, so the send is
/// bounded by a short deadline.
void SendAbort(Transport* peer, int32_t rank, const std::string& reason) {
  cold::Status ignored = WriteFrame(peer, FrameType::kAbort, rank, 0, reason,
                                    /*timeout_ms=*/2000);
  (void)ignored;
}

}  // namespace

DistTrainer::DistTrainer(DistConfig config, const text::PostStore& posts,
                         const graph::Digraph* links)
    : config_(std::move(config)), posts_(posts), links_(links) {
  // Each process is one real node: the engine's simulated-cluster model is
  // superseded by actual measurement (cut_edges = 0 keeps the simulated
  // comm accounting out of the per-node numbers).
  config_.engine.num_nodes = 1;
}

DistTrainer::~DistTrainer() { StopHeartbeats(); }

int DistTrainer::FrameTimeoutMs() const {
  if (config_.heartbeat_timeout_ms <= 0) return -1;
  return config_.progress_timeout_ms > 0 ? config_.progress_timeout_ms : -1;
}

cold::Result<Frame> DistTrainer::ReadFrameLive(Transport* transport) {
  constexpr uint64_t kMaxPayload = uint64_t{1} << 31;
  if (config_.heartbeat_timeout_ms <= 0) {
    for (;;) {
      COLD_ASSIGN_OR_RETURN(Frame frame, ReadFrame(transport, kMaxPayload));
      if (frame.type != FrameType::kHeartbeat) return frame;
    }
  }
  const bool bounded_progress = config_.progress_timeout_ms > 0;
  const LivenessClock::time_point progress_deadline =
      LivenessClock::now() +
      std::chrono::milliseconds(bounded_progress ? config_.progress_timeout_ms
                                                 : 0);
  for (;;) {
    // The tighter of the two deadlines bounds this wait: silence for
    // heartbeat_timeout_ms means a dead/hung peer; heartbeats without a
    // data frame for progress_timeout_ms means a lost frame.
    int budget = config_.heartbeat_timeout_ms;
    bool progress_is_tighter = false;
    if (bounded_progress) {
      const int left = RemainingMs(progress_deadline);
      if (left <= budget) {
        budget = left;
        progress_is_tighter = true;
      }
    }
    auto frame = ReadFrame(transport, kMaxPayload, budget);
    if (!frame.ok()) {
      if (frame.status().code() == cold::StatusCode::kDeadlineExceeded) {
        Metrics().frame_timeouts->Increment();
        return progress_is_tighter
                   ? cold::Status::DeadlineExceeded(
                         "no data frame within the progress deadline of " +
                         std::to_string(config_.progress_timeout_ms) +
                         "ms (peer may have dropped a frame)")
                   : cold::Status::DeadlineExceeded(
                         "peer silent past the liveness deadline of " +
                         std::to_string(config_.heartbeat_timeout_ms) +
                         "ms (dead or hung)");
      }
      return frame.status();
    }
    if (frame->type == FrameType::kHeartbeat) continue;
    return std::move(*frame);
  }
}

void DistTrainer::StartHeartbeats(
    const std::vector<std::unique_ptr<Transport>>& peers) {
  if (config_.heartbeat_timeout_ms <= 0 || peers.empty() ||
      heartbeat_thread_.joinable()) {
    return;
  }
  stop_heartbeats_ = false;
  std::vector<Transport*> targets;
  targets.reserve(peers.size());
  for (const auto& peer : peers) targets.push_back(peer.get());
  heartbeat_thread_ = std::thread([this, targets] {
    const int32_t rank = config_.node_rank;
    // `alive` goes false per peer on the first send error (EPIPE after the
    // peer exits is routine at teardown) so a dead peer is not re-poked
    // every interval.
    std::vector<bool> alive(targets.size(), true);
    for (;;) {
      for (size_t i = 0; i < targets.size(); ++i) {
        if (!alive[i]) continue;
        cold::Status st =
            WriteFrame(targets[i], FrameType::kHeartbeat, rank, 0, {},
                       config_.heartbeat_timeout_ms);
        if (st.ok()) {
          Metrics().heartbeats->Increment();
        } else {
          alive[i] = false;
        }
      }
      std::unique_lock<std::mutex> lock(heartbeat_mutex_);
      heartbeat_cv_.wait_for(
          lock, std::chrono::milliseconds(config_.heartbeat_interval_ms),
          [this] { return stop_heartbeats_; });
      if (stop_heartbeats_) return;
    }
  });
}

void DistTrainer::StopHeartbeats() {
  if (!heartbeat_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(heartbeat_mutex_);
    stop_heartbeats_ = true;
  }
  heartbeat_cv_.notify_all();
  heartbeat_thread_.join();
}

cold::Status DistTrainer::Validate(size_t num_peers) const {
  if (config_.num_nodes < 1) {
    return cold::Status::InvalidArgument("num_nodes must be >= 1");
  }
  if (config_.node_rank < 0 || config_.node_rank >= config_.num_nodes) {
    return cold::Status::InvalidArgument(
        "node_rank " + std::to_string(config_.node_rank) +
        " outside [0, " + std::to_string(config_.num_nodes) + ")");
  }
  if (config_.engine.legacy_shared_counters) {
    return cold::Status::InvalidArgument(
        "distributed training requires the delta-table mode "
        "(legacy_shared_counters must be off)");
  }
  const size_t want =
      config_.num_nodes == 1
          ? 0
          : (config_.node_rank == 0
                 ? static_cast<size_t>(config_.num_nodes - 1)
                 : 1);
  if (num_peers != want) {
    return cold::Status::InvalidArgument(
        "rank " + std::to_string(config_.node_rank) + " of " +
        std::to_string(config_.num_nodes) + " needs " +
        std::to_string(want) + " peer transports, got " +
        std::to_string(num_peers));
  }
  return cold::Status::OK();
}

std::vector<int32_t> DistTrainer::ValidatedSweeps() const {
  std::vector<int32_t> sweeps;
  if (!config_.resume || checkpoints_ == nullptr ||
      checkpoints_->options().dir.empty()) {
    return sweeps;
  }
  for (const auto& [sweep, path] : checkpoints_->ListFiles()) {
    auto loaded = core::CheckpointManager::ReadFile(path);
    if (!loaded.ok()) {
      COLD_LOG(kWarning) << "skipping unreadable checkpoint " << path << ": "
                        << loaded.status().ToString();
      continue;
    }
    if (loaded->meta.flavor != core::CheckpointFlavor::kParallel ||
        loaded->meta.data_fingerprint != fingerprint_) {
      continue;
    }
    sweeps.push_back(sweep);
  }
  return sweeps;
}

cold::Status DistTrainer::Handshake(
    std::vector<std::unique_ptr<Transport>>* peers, int32_t* resume_sweep) {
  std::vector<int32_t> local_sweeps = ValidatedSweeps();
  if (config_.num_nodes == 1) {
    *resume_sweep = local_sweeps.empty()
                        ? -1
                        : *std::max_element(local_sweeps.begin(),
                                            local_sweeps.end());
    return cold::Status::OK();
  }

  HelloPayload self;
  self.rank = config_.node_rank;
  self.num_nodes = config_.num_nodes;
  self.seed = config_.cold.seed;
  self.iterations = config_.cold.iterations;
  self.num_communities = config_.cold.num_communities;
  self.num_topics = config_.cold.num_topics;
  self.threads = config_.engine.threads_per_node;
  self.data_fingerprint = fingerprint_;
  self.checkpoint_sweeps = local_sweeps;

  // Handshake frames flow before heartbeats start, so they are bounded by
  // the (generous) progress deadline alone: the coordinator answers only
  // after hearing from every worker, and workers may spend a while
  // validating local checkpoints first.
  constexpr uint64_t kMaxPayload = uint64_t{1} << 31;
  const int handshake_timeout_ms = FrameTimeoutMs();

  if (config_.node_rank != 0) {
    Transport* coord = (*peers)[0].get();
    COLD_RETURN_NOT_OK(WriteFrame(coord, FrameType::kHello, self.rank, 0,
                                  EncodeHello(self), handshake_timeout_ms));
    COLD_ASSIGN_OR_RETURN(
        Frame frame, ReadFrame(coord, kMaxPayload, handshake_timeout_ms));
    COLD_RETURN_NOT_OK(ExpectFrame(frame, FrameType::kWelcome, 0));
    WelcomePayload welcome;
    COLD_RETURN_NOT_OK(DecodeWelcome(frame.payload, &welcome));
    *resume_sweep = welcome.resume_sweep;
    return cold::Status::OK();
  }

  // Coordinator: collect one hello per connection (TCP accept order is
  // arbitrary), verify cluster-wide config consistency, and re-index the
  // peer table by the rank each hello carries.
  std::vector<std::unique_ptr<Transport>> by_rank(peers->size());
  std::vector<HelloPayload> hellos;
  for (auto& peer : *peers) {
    COLD_ASSIGN_OR_RETURN(
        Frame frame,
        ReadFrame(peer.get(), kMaxPayload, handshake_timeout_ms));
    COLD_RETURN_NOT_OK(ExpectFrame(frame, FrameType::kHello, 0));
    HelloPayload hello;
    COLD_RETURN_NOT_OK(DecodeHello(frame.payload, &hello));
    std::string problem;
    if (hello.rank < 1 || hello.rank >= config_.num_nodes) {
      problem = "rank outside [1, num_nodes)";
    } else if (by_rank[static_cast<size_t>(hello.rank - 1)] != nullptr) {
      problem = "duplicate rank " + std::to_string(hello.rank);
    } else if (hello.num_nodes != self.num_nodes ||
               hello.seed != self.seed ||
               hello.iterations != self.iterations ||
               hello.num_communities != self.num_communities ||
               hello.num_topics != self.num_topics ||
               hello.threads != self.threads) {
      problem = "run configuration differs from the coordinator's";
    } else if (hello.data_fingerprint != self.data_fingerprint) {
      problem = "training data fingerprint differs from the coordinator's";
    }
    if (!problem.empty()) {
      for (auto& p : *peers) {
        if (p != nullptr) SendAbort(p.get(), 0, problem);
      }
      return cold::Status::FailedPrecondition(
          "handshake with rank " + std::to_string(hello.rank) +
          " failed: " + problem);
    }
    by_rank[static_cast<size_t>(hello.rank - 1)] = std::move(peer);
    hellos.push_back(std::move(hello));
  }
  *peers = std::move(by_rank);

  // Resume from the newest sweep EVERY node can load; rotation keeps the
  // last few, so nodes that checkpointed ahead of a crashed peer roll back
  // to the common sweep instead of poisoning the run.
  std::vector<int32_t> common = local_sweeps;
  std::sort(common.begin(), common.end());
  for (const HelloPayload& hello : hellos) {
    std::vector<int32_t> theirs = hello.checkpoint_sweeps;
    std::sort(theirs.begin(), theirs.end());
    std::vector<int32_t> both;
    std::set_intersection(common.begin(), common.end(), theirs.begin(),
                          theirs.end(), std::back_inserter(both));
    common = std::move(both);
  }
  *resume_sweep = common.empty() ? -1 : common.back();

  WelcomePayload welcome;
  welcome.resume_sweep = *resume_sweep;
  const std::string payload = EncodeWelcome(welcome);
  for (auto& peer : *peers) {
    COLD_RETURN_NOT_OK(WriteFrame(peer.get(), FrameType::kWelcome, 0, 0,
                                  payload, handshake_timeout_ms));
  }
  return cold::Status::OK();
}

cold::Status DistTrainer::LoadResumeSweep(int32_t resume_sweep) {
  if (resume_sweep < 0) return cold::Status::OK();
  COLD_TRACE_SPAN("dist/recovery");
  const std::string path =
      checkpoints_->options().dir + "/" +
      core::CheckpointManager::FileName(resume_sweep);
  COLD_ASSIGN_OR_RETURN(core::LoadedCheckpoint loaded,
                        core::CheckpointManager::ReadFile(path));
  if (loaded.meta.flavor != core::CheckpointFlavor::kParallel ||
      loaded.meta.data_fingerprint != fingerprint_) {
    return cold::Status::FailedPrecondition(
        "negotiated checkpoint " + path + " does not match this run");
  }
  COLD_RETURN_NOT_OK(trainer_->RestoreState(loaded.payload));
  if (trainer_->supersteps_run() != resume_sweep) {
    return cold::Status::Internal(
        "checkpoint " + path + " restored to sweep " +
        std::to_string(trainer_->supersteps_run()) + ", expected " +
        std::to_string(resume_sweep));
  }
  stats_.resumed_sweep = resume_sweep;
  Metrics().restarts->Increment();
  COLD_LOG(kInfo) << "dist rank " << config_.node_rank
                 << " resumed from sweep " << resume_sweep;
  return cold::Status::OK();
}

cold::Status DistTrainer::ExchangeUpdates(
    const std::vector<std::unique_ptr<Transport>>& peers, uint64_t sweep,
    const core::SuperstepUpdate& local, core::SuperstepUpdate* global) {
  COLD_TRACE_SPAN("dist/exchange");
  if (config_.num_nodes == 1) {
    *global = local;
    return cold::Status::OK();
  }

  if (config_.node_rank != 0) {
    Transport* coord = peers[0].get();
    COLD_RETURN_NOT_OK(WriteFrame(coord, FrameType::kDelta,
                                  config_.node_rank, sweep,
                                  EncodeUpdate(local), FrameTimeoutMs()));
    Frame frame;
    {
      cold::ScopedTimer timer(stats_.barrier_wait_seconds);
      COLD_ASSIGN_OR_RETURN(frame, ReadFrameLive(coord));
    }
    COLD_RETURN_NOT_OK(ExpectFrame(frame, FrameType::kGlobal, sweep));
    COLD_RETURN_NOT_OK(DecodeUpdate(frame.payload, global));
    Metrics().frames->Increment(2);
    return cold::Status::OK();
  }

  // Coordinator: fold every node's counts into the dense accumulator (the
  // per-cell sums commute, so this equals the single-process merge) and
  // concatenate assignment rewrites in rank order — each edge is owned by
  // exactly one node, so the lists are disjoint.
  merge_acc_.assign(trainer_->DeltaTableSize(), 0);
  merge_touched_.clear();
  *global = core::SuperstepUpdate{};
  auto fold = [this, global](const core::SuperstepUpdate& update) {
    for (const auto& [idx, delta] : update.count_deltas) {
      if (merge_acc_[idx] == 0) merge_touched_.push_back(idx);
      merge_acc_[idx] += delta;
    }
    global->post_updates.insert(global->post_updates.end(),
                                update.post_updates.begin(),
                                update.post_updates.end());
    global->link_updates.insert(global->link_updates.end(),
                                update.link_updates.begin(),
                                update.link_updates.end());
  };
  fold(local);
  for (size_t r = 0; r < peers.size(); ++r) {
    Frame frame;
    {
      cold::ScopedTimer timer(stats_.barrier_wait_seconds);
      COLD_ASSIGN_OR_RETURN(frame, ReadFrameLive(peers[r].get()));
    }
    COLD_RETURN_NOT_OK(ExpectFrame(frame, FrameType::kDelta, sweep));
    if (frame.sender_rank != static_cast<int32_t>(r + 1)) {
      return cold::Status::IOError(
          "peer slot " + std::to_string(r + 1) + " spoke as rank " +
          std::to_string(frame.sender_rank));
    }
    core::SuperstepUpdate update;
    COLD_RETURN_NOT_OK(DecodeUpdate(frame.payload, &update));
    fold(update);
  }
  // Re-sparsify ascending — the canonical delta order (DrainDeltas emits
  // ascending too, so the 1-node wire form and the merged form agree).
  // Dedup: a cell whose running sum transiently cancels to zero gets
  // recorded once per zero-crossing above.
  std::sort(merge_touched_.begin(), merge_touched_.end());
  merge_touched_.erase(
      std::unique(merge_touched_.begin(), merge_touched_.end()),
      merge_touched_.end());
  global->count_deltas.reserve(merge_touched_.size());
  for (uint32_t idx : merge_touched_) {
    if (merge_acc_[idx] != 0) {
      global->count_deltas.emplace_back(idx, merge_acc_[idx]);
    }
  }
  const std::string payload = EncodeUpdate(*global);
  for (const auto& peer : peers) {
    COLD_RETURN_NOT_OK(WriteFrame(peer.get(), FrameType::kGlobal, 0, sweep,
                                  payload, FrameTimeoutMs()));
  }
  Metrics().frames->Increment(static_cast<int64_t>(2 * peers.size()));
  return cold::Status::OK();
}

cold::Status DistTrainer::MaybeCheckpoint(int sweep) const {
  if (checkpoints_ == nullptr || !checkpoints_->ShouldCheckpoint(sweep)) {
    return cold::Status::OK();
  }
  core::CheckpointMeta meta;
  meta.flavor = core::CheckpointFlavor::kParallel;
  meta.sweep = sweep;
  meta.data_fingerprint = fingerprint_;
  std::string payload;
  COLD_RETURN_NOT_OK(trainer_->SerializeState(&payload));
  return checkpoints_->Write(meta, payload);
}

cold::Status DistTrainer::Run(
    std::vector<std::unique_ptr<Transport>> peers) {
  COLD_RETURN_NOT_OK(Validate(peers.size()));
  fingerprint_ = core::DataFingerprint(posts_, links_);

  trainer_ = std::make_unique<core::ParallelColdTrainer>(
      config_.cold, posts_, links_, config_.engine);
  COLD_RETURN_NOT_OK(trainer_->Init());
  if (!config_.checkpoint.dir.empty()) {
    checkpoints_ =
        std::make_unique<core::CheckpointManager>(config_.checkpoint);
    COLD_RETURN_NOT_OK(checkpoints_->Init());
  }

  int32_t resume_sweep = -1;
  COLD_RETURN_NOT_OK(Handshake(&peers, &resume_sweep));

  // Heartbeats start the moment the handshake settles, so even a slow
  // checkpoint load (below) keeps every peer's liveness deadline fed.
  StartHeartbeats(peers);
  cold::Status st = LoadResumeSweep(resume_sweep);
  if (st.ok()) st = TrainLoop(peers);
  StopHeartbeats();
  if (!st.ok() && config_.num_nodes > 1) {
    // Let the survivors exit promptly (checkpoints intact) instead of
    // each burning a full liveness deadline discovering the failure.
    for (const auto& peer : peers) {
      if (peer != nullptr) {
        SendAbort(peer.get(), config_.node_rank, st.ToString());
      }
    }
  }
  return st;
}

cold::Status DistTrainer::TrainLoop(
    const std::vector<std::unique_ptr<Transport>>& peers) {
  // Deterministic chunk ownership: every node computes the identical
  // owner table, so the masks tile the chunk space exactly.
  const std::vector<int32_t> owners =
      trainer_->ComputeChunkOwners(config_.num_nodes);
  std::vector<uint8_t> mask(owners.size(), 0);
  for (size_t chunk = 0; chunk < owners.size(); ++chunk) {
    if (owners[chunk] == config_.node_rank) mask[chunk] = 1;
  }
  stats_.total_chunks = static_cast<int64_t>(owners.size());
  stats_.owned_chunks = static_cast<int64_t>(
      std::count(mask.begin(), mask.end(), uint8_t{1}));

  core::SuperstepUpdate local;
  core::SuperstepUpdate global;
  while (trainer_->supersteps_run() < config_.cold.iterations) {
    COLD_TRACE_SPAN("dist/superstep");
    cold::ScopedTimer timer(stats_.superstep_seconds);
    const auto sweep0 =
        static_cast<uint64_t>(trainer_->supersteps_run());
    COLD_RETURN_NOT_OK(trainer_->RunSuperstepSharded(mask, &local));
    COLD_RETURN_NOT_OK(ExchangeUpdates(peers, sweep0, local, &global));
    COLD_RETURN_NOT_OK(trainer_->ApplyGlobalUpdate(global));
    const int sweep = trainer_->supersteps_run();
    stats_.supersteps_run = sweep;

    int64_t wire_bytes = 0;
    for (const auto& peer : peers) {
      wire_bytes += peer->bytes_sent() + peer->bytes_received();
    }
    DistMetrics& metrics = Metrics();
    metrics.comm_bytes->Increment(
        wire_bytes - (stats_.bytes_sent + stats_.bytes_received));
    stats_.bytes_sent = 0;
    stats_.bytes_received = 0;
    for (const auto& peer : peers) {
      stats_.bytes_sent += peer->bytes_sent();
      stats_.bytes_received += peer->bytes_received();
    }
    metrics.superstep->Set(static_cast<double>(sweep));

    // Durable before the fault point, mirroring the single-process Train()
    // ordering: an injected crash after sweep K must leave sweep K's
    // checkpoint on disk.
    COLD_RETURN_NOT_OK(MaybeCheckpoint(sweep));
    if (superstep_callback_) superstep_callback_(sweep);
    cold::FaultInjector::Global().MaybeCrash("after_sweep", sweep);
  }
  return cold::Status::OK();
}

core::ColdEstimates DistTrainer::Estimates() const {
  return trainer_->Estimates();
}

core::ColdState DistTrainer::StateSnapshot() const {
  return trainer_->StateSnapshot();
}

cold::Status DistTrainer::SerializeState(std::string* out) const {
  return trainer_->SerializeState(out);
}

cold::Status DistTrainer::RunLocalCluster(
    const std::vector<DistTrainer*>& nodes) {
  if (nodes.empty()) {
    return cold::Status::InvalidArgument("no nodes");
  }
  const int n = static_cast<int>(nodes.size());
  std::vector<std::vector<std::unique_ptr<Transport>>> peer_sets(
      static_cast<size_t>(n));
  for (int rank = 1; rank < n; ++rank) {
    std::unique_ptr<Transport> coord_end;
    std::unique_ptr<Transport> worker_end;
    COLD_RETURN_NOT_OK(LoopbackPair(&coord_end, &worker_end));
    peer_sets[0].push_back(std::move(coord_end));
    peer_sets[static_cast<size_t>(rank)].push_back(std::move(worker_end));
  }
  std::vector<cold::Status> results(static_cast<size_t>(n),
                                    cold::Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n - 1));
  for (int rank = 1; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      results[static_cast<size_t>(rank)] =
          nodes[static_cast<size_t>(rank)]->Run(
              std::move(peer_sets[static_cast<size_t>(rank)]));
    });
  }
  results[0] = nodes[0]->Run(std::move(peer_sets[0]));
  for (std::thread& t : threads) t.join();
  for (const cold::Status& s : results) {
    if (!s.ok()) return s;
  }
  return cold::Status::OK();
}

}  // namespace cold::dist
