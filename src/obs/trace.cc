#include "obs/trace.h"

#include <atomic>
#include <mutex>

#include "obs/metrics.h"

namespace cold::obs {

namespace {

thread_local int tls_span_depth = 0;

std::chrono::steady_clock::time_point ProcessStart() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

struct RingState {
  std::mutex mutex;
  std::vector<TraceEvent> events;  // circular once full
  size_t capacity = 0;
  size_t next = 0;   // insertion cursor
  bool wrapped = false;
};

RingState& Ring() {
  static RingState* state = new RingState();
  return *state;
}

std::atomic<bool> g_ring_enabled{false};

}  // namespace

void TraceRing::Enable(size_t capacity) {
  RingState& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.capacity = capacity > 0 ? capacity : 1;
  ring.events.clear();
  ring.events.reserve(ring.capacity);
  ring.next = 0;
  ring.wrapped = false;
  g_ring_enabled.store(true, std::memory_order_release);
}

void TraceRing::Disable() {
  g_ring_enabled.store(false, std::memory_order_release);
}

bool TraceRing::enabled() {
  return g_ring_enabled.load(std::memory_order_relaxed);
}

void TraceRing::Push(TraceEvent event) {
  if (!enabled()) return;
  RingState& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  if (ring.capacity == 0) return;
  if (ring.events.size() < ring.capacity) {
    ring.events.push_back(std::move(event));
    ring.next = ring.events.size() % ring.capacity;
    ring.wrapped = ring.events.size() == ring.capacity && ring.next == 0;
  } else {
    ring.events[ring.next] = std::move(event);
    ring.next = (ring.next + 1) % ring.capacity;
    ring.wrapped = true;
  }
}

std::vector<TraceEvent> TraceRing::Events() {
  RingState& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  if (!ring.wrapped || ring.events.size() < ring.capacity) {
    return ring.events;
  }
  std::vector<TraceEvent> out;
  out.reserve(ring.events.size());
  for (size_t i = 0; i < ring.events.size(); ++i) {
    out.push_back(ring.events[(ring.next + i) % ring.events.size()]);
  }
  return out;
}

void TraceRing::Clear() {
  RingState& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.events.clear();
  ring.next = 0;
  ring.wrapped = false;
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!Registry::enabled()) return;
  active_ = true;
  depth_ = ++tls_span_depth;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  auto end = std::chrono::steady_clock::now();
  --tls_span_depth;
  double seconds = std::chrono::duration<double>(end - start_).count();
  Registry::Global()
      .GetHistogram(std::string("cold/trace/") + name_)
      ->Observe(seconds);
  if (TraceRing::enabled()) {
    TraceEvent event;
    event.name = name_;
    event.start_seconds =
        std::chrono::duration<double>(start_ - ProcessStart()).count();
    event.duration_seconds = seconds;
    event.depth = depth_;
    TraceRing::Push(std::move(event));
  }
}

}  // namespace cold::obs
